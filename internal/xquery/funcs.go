package xquery

import (
	"fmt"
	"strings"

	"archis/internal/obs"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// builtinFunc implements one XQuery function.
type builtinFunc func(ev *Evaluator, en *env, args []Seq) (Seq, error)

func (ev *Evaluator) evalFuncCall(x *FuncCall, en *env) (Seq, error) {
	// User-defined functions (the query prolog) take precedence over
	// builtins, so the temporal library can be redefined in XQuery
	// itself — which is how the paper originally implements it.
	if en.userFuncs != nil {
		if fd, ok := en.userFuncs[x.Name]; ok {
			return ev.callUserFunc(fd, x, en)
		}
	}
	fn, ok := ev.funcs[x.Name]
	if !ok {
		return nil, fmt.Errorf("xquery: unknown function %s()", x.Name)
	}
	args := make([]Seq, len(x.Args))
	for i, a := range x.Args {
		s, err := ev.eval(a, en)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	return fn(ev, en, args)
}

// maxUserFuncDepth bounds recursive user-defined functions.
const maxUserFuncDepth = 4096

// maxUserFuncSpans caps per-call userfunc spans so a user function
// invoked per row cannot blow up the trace tree; the total call count
// is always recorded on the xquery:eval span.
const maxUserFuncSpans = 16

func (ev *Evaluator) callUserFunc(fd *FuncDecl, x *FuncCall, en *env) (Seq, error) {
	if len(x.Args) != len(fd.Params) {
		return nil, fmt.Errorf("xquery: %s() expects %d arguments, got %d",
			fd.Name, len(fd.Params), len(x.Args))
	}
	ev.userDepth++
	defer func() { ev.userDepth-- }()
	if ev.userDepth > maxUserFuncDepth {
		return nil, fmt.Errorf("xquery: %s(): recursion too deep", fd.Name)
	}
	var us *obs.Span
	if ev.evalSpan != nil && ev.userDepth == 1 {
		ev.ufCalls++
		if ev.ufTraced < maxUserFuncSpans {
			ev.ufTraced++
			us = ev.evalSpan.Child("xquery:userfunc")
			us.SetAttr("name", fd.Name)
		}
	}
	defer us.End()
	// Function bodies see only their parameters (and the prolog), not
	// the caller's variables or context item.
	callee := &env{vars: make(map[string]Seq, len(fd.Params)), userFuncs: en.userFuncs}
	for i, a := range x.Args {
		v, err := ev.eval(a, en)
		if err != nil {
			return nil, err
		}
		callee.vars[fd.Params[i]] = v
	}
	return ev.eval(fd.Body, callee)
}

func wantN(name string, args []Seq, n int) error {
	if len(args) != n {
		return fmt.Errorf("xquery: %s() expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// firstInterval extracts the interval of the first item of a sequence.
func firstInterval(name string, s Seq) (temporal.Interval, error) {
	if len(s) == 0 {
		return temporal.Interval{}, fmt.Errorf("xquery: %s() of empty sequence", name)
	}
	return s[0].Interval()
}

// intervalFunc adapts a two-interval predicate.
func intervalFunc(name string, pred func(a, b temporal.Interval) bool) builtinFunc {
	return func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN(name, args, 2); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 || len(args[1]) == 0 {
			return Seq{BoolItem(false)}, nil
		}
		a, err := firstInterval(name, args[0])
		if err != nil {
			return nil, err
		}
		b, err := firstInterval(name, args[1])
		if err != nil {
			return nil, err
		}
		return Seq{BoolItem(pred(a, b))}, nil
	}
}

func intervalElement(iv temporal.Interval) *xmltree.Node {
	return xmltree.NewElement("interval").
		SetAttr("tstart", iv.Start.String()).
		SetAttr("tend", iv.End.String())
}

func builtinFuncs() map[string]builtinFunc {
	f := map[string]builtinFunc{}

	// ---- documents & nodes ----
	docFn := func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("doc", args, 1); err != nil {
			return nil, err
		}
		if ev.Docs == nil {
			return nil, fmt.Errorf("xquery: no document resolver installed")
		}
		if len(args[0]) == 0 {
			return nil, fmt.Errorf("xquery: doc() of empty sequence")
		}
		root, err := ev.Docs(args[0][0].StringValue())
		if err != nil {
			return nil, err
		}
		// Wrap in a document node so the first path step matches the
		// root element by name.
		docNode := xmltree.NewElement("#document")
		docNode.Children = []*xmltree.Node{root} // avoid reparenting root
		return Seq{NodeItem(docNode)}, nil
	}
	f["doc"] = docFn
	f["document"] = docFn

	f["root"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		if !en.hasCtx || !en.ctx.IsNode() {
			return nil, fmt.Errorf("xquery: root() requires a node context")
		}
		n := en.ctx.Node
		for n.Parent != nil {
			n = n.Parent
		}
		doc := xmltree.NewElement("#document")
		doc.Children = []*xmltree.Node{n}
		return Seq{NodeItem(doc)}, nil
	}

	f["position"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		if en.ctxPos == 0 {
			return nil, fmt.Errorf("xquery: position() outside a predicate")
		}
		return Seq{NumberItem(float64(en.ctxPos))}, nil
	}
	f["last"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		if en.ctxSize == 0 {
			return nil, fmt.Errorf("xquery: last() outside a predicate")
		}
		return Seq{NumberItem(float64(en.ctxSize))}, nil
	}

	f["name"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		var it Item
		switch {
		case len(args) >= 1 && len(args[0]) > 0:
			it = args[0][0]
		case en.hasCtx:
			it = en.ctx
		default:
			return Seq{StringItem("")}, nil
		}
		if it.IsNode() {
			return Seq{StringItem(it.Node.Name)}, nil
		}
		return Seq{StringItem("")}, nil
	}

	// ---- general ----
	f["empty"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("empty", args, 1); err != nil {
			return nil, err
		}
		return Seq{BoolItem(len(args[0]) == 0)}, nil
	}
	f["exists"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("exists", args, 1); err != nil {
			return nil, err
		}
		return Seq{BoolItem(len(args[0]) > 0)}, nil
	}
	f["not"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("not", args, 1); err != nil {
			return nil, err
		}
		return Seq{BoolItem(!args[0].EffectiveBool())}, nil
	}
	f["boolean"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("boolean", args, 1); err != nil {
			return nil, err
		}
		return Seq{BoolItem(args[0].EffectiveBool())}, nil
	}
	f["true"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		return Seq{BoolItem(true)}, nil
	}
	f["false"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		return Seq{BoolItem(false)}, nil
	}
	f["count"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("count", args, 1); err != nil {
			return nil, err
		}
		return Seq{NumberItem(float64(len(args[0])))}, nil
	}
	f["sum"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("sum", args, 1); err != nil {
			return nil, err
		}
		var total float64
		for _, it := range args[0] {
			v, ok := it.NumberValue()
			if !ok {
				return nil, fmt.Errorf("xquery: sum() of non-number %q", it.String())
			}
			total += v
		}
		return Seq{NumberItem(total)}, nil
	}
	f["avg"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("avg", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		var total float64
		for _, it := range args[0] {
			v, ok := it.NumberValue()
			if !ok {
				return nil, fmt.Errorf("xquery: avg() of non-number %q", it.String())
			}
			total += v
		}
		return Seq{NumberItem(total / float64(len(args[0])))}, nil
	}
	extremum := func(name string, keep func(cmp int) bool) builtinFunc {
		return func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
			if err := wantN(name, args, 1); err != nil {
				return nil, err
			}
			if len(args[0]) == 0 {
				return nil, nil
			}
			// Interval nodes compare by span (supports the QUERY 6
			// restructure → max() idiom); everything else numerically,
			// falling back to strings.
			best := args[0][0]
			bestKey := extremumKey(ev, best)
			for _, it := range args[0][1:] {
				k := extremumKey(ev, it)
				if keep(compareItemsTotal(k, bestKey)) {
					best, bestKey = it, k
				}
			}
			return Seq{bestKey}, nil
		}
	}
	f["max"] = extremum("max", func(c int) bool { return c > 0 })
	f["min"] = extremum("min", func(c int) bool { return c < 0 })

	f["string"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		switch len(args) {
		case 0:
			if !en.hasCtx {
				return Seq{StringItem("")}, nil
			}
			return Seq{StringItem(en.ctx.StringValue())}, nil
		case 1:
			if len(args[0]) == 0 {
				return Seq{StringItem("")}, nil
			}
			return Seq{StringItem(args[0][0].StringValue())}, nil
		}
		return nil, fmt.Errorf("xquery: string() takes 0 or 1 arguments")
	}
	f["number"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		var it Item
		switch {
		case len(args) == 1 && len(args[0]) > 0:
			it = args[0][0]
		case len(args) == 0 && en.hasCtx:
			it = en.ctx
		default:
			return nil, nil
		}
		v, ok := it.NumberValue()
		if !ok {
			return nil, nil
		}
		return Seq{NumberItem(v)}, nil
	}
	f["data"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("data", args, 1); err != nil {
			return nil, err
		}
		out := make(Seq, 0, len(args[0]))
		for _, it := range args[0] {
			out = append(out, StringItem(it.StringValue()))
		}
		return out, nil
	}
	f["distinct-values"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("distinct-values", args, 1); err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out Seq
		for _, it := range args[0] {
			s := it.StringValue()
			if !seen[s] {
				seen[s] = true
				out = append(out, StringItem(s))
			}
		}
		return out, nil
	}
	f["concat"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		var sb strings.Builder
		for _, a := range args {
			if len(a) > 0 {
				sb.WriteString(a[0].StringValue())
			}
		}
		return Seq{StringItem(sb.String())}, nil
	}
	f["contains"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("contains", args, 2); err != nil {
			return nil, err
		}
		hay, needle := "", ""
		if len(args[0]) > 0 {
			hay = args[0][0].StringValue()
		}
		if len(args[1]) > 0 {
			needle = args[1][0].StringValue()
		}
		return Seq{BoolItem(strings.Contains(hay, needle))}, nil
	}
	f["starts-with"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("starts-with", args, 2); err != nil {
			return nil, err
		}
		s, pre := "", ""
		if len(args[0]) > 0 {
			s = args[0][0].StringValue()
		}
		if len(args[1]) > 0 {
			pre = args[1][0].StringValue()
		}
		return Seq{BoolItem(strings.HasPrefix(s, pre))}, nil
	}
	f["string-length"] = func(_ *Evaluator, en *env, args []Seq) (Seq, error) {
		s := ""
		switch {
		case len(args) == 1 && len(args[0]) > 0:
			s = args[0][0].StringValue()
		case len(args) == 0 && en.hasCtx:
			s = en.ctx.StringValue()
		}
		return Seq{NumberItem(float64(len(s)))}, nil
	}

	// ---- dates ----
	f["current-date"] = func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		return Seq{DateItem(ev.Now)}, nil
	}
	f["xs:date"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("xs:date", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		d, err := temporal.ParseDate(strings.TrimSpace(args[0][0].StringValue()))
		if err != nil {
			return nil, err
		}
		return Seq{DateItem(d)}, nil
	}
	f["date"] = f["xs:date"]

	// ---- temporal library (paper Section 4.2) ----
	f["tstart"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("tstart", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		iv, err := args[0][0].Interval()
		if err != nil {
			return nil, err
		}
		return Seq{DateItem(iv.Start)}, nil
	}
	f["tend"] = func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("tend", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		iv, err := args[0][0].Interval()
		if err != nil {
			return nil, err
		}
		// Section 4.3: the user never sees the internal end-of-time
		// value — a current tuple reports current-date().
		if iv.End.IsForever() {
			return Seq{DateItem(ev.Now)}, nil
		}
		return Seq{DateItem(iv.End)}, nil
	}
	f["tinterval"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("tinterval", args, 1); err != nil {
			return nil, err
		}
		iv, err := firstInterval("tinterval", args[0])
		if err != nil {
			return nil, err
		}
		return Seq{NodeItem(intervalElement(iv))}, nil
	}
	f["telement"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("telement", args, 2); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 || len(args[1]) == 0 {
			return nil, fmt.Errorf("xquery: telement() of empty sequence")
		}
		s, ok1 := args[0][0].DateValue()
		e, ok2 := args[1][0].DateValue()
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("xquery: telement() expects dates")
		}
		el := xmltree.NewElement("telement").
			SetAttr("tstart", s.String()).
			SetAttr("tend", e.String())
		return Seq{NodeItem(el)}, nil
	}
	f["toverlaps"] = intervalFunc("toverlaps", temporal.Interval.Overlaps)
	f["tcontains"] = intervalFunc("tcontains", temporal.Interval.ContainsInterval)
	f["tequals"] = intervalFunc("tequals", temporal.Interval.Equals)
	f["tmeets"] = intervalFunc("tmeets", temporal.Interval.Meets)
	f["tprecedes"] = intervalFunc("tprecedes", temporal.Interval.Precedes)

	f["overlapinterval"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("overlapinterval", args, 2); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 || len(args[1]) == 0 {
			return nil, nil
		}
		a, err := firstInterval("overlapinterval", args[0])
		if err != nil {
			return nil, err
		}
		b, err := firstInterval("overlapinterval", args[1])
		if err != nil {
			return nil, err
		}
		iv, ok := a.Intersect(b)
		if !ok {
			return nil, nil
		}
		return Seq{NodeItem(intervalElement(iv))}, nil
	}
	f["timespan"] = func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("timespan", args, 1); err != nil {
			return nil, err
		}
		iv, err := firstInterval("timespan", args[0])
		if err != nil {
			return nil, err
		}
		return Seq{NumberItem(float64(iv.Days(ev.Now)))}, nil
	}

	f["coalesce"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("coalesce", args, 1); err != nil {
			return nil, err
		}
		type meta struct {
			name string
			text string
		}
		var timed []temporal.Timed
		metas := map[string]meta{}
		for _, it := range args[0] {
			if !it.IsNode() {
				return nil, fmt.Errorf("xquery: coalesce() expects nodes")
			}
			iv, err := it.Interval()
			if err != nil {
				return nil, err
			}
			key := it.Node.Name + "\x00" + it.Node.TextContent()
			metas[key] = meta{name: it.Node.Name, text: it.Node.TextContent()}
			timed = append(timed, temporal.Timed{Value: key, Interval: iv})
		}
		var out Seq
		for _, tv := range temporal.Coalesce(timed) {
			m := metas[tv.Value]
			el := xmltree.NewElement(m.name).
				SetAttr("tstart", tv.Interval.Start.String()).
				SetAttr("tend", tv.Interval.End.String())
			if m.text != "" {
				el.AppendText(m.text)
			}
			out = append(out, NodeItem(el))
		}
		return out, nil
	}

	f["restructure"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("restructure", args, 2); err != nil {
			return nil, err
		}
		collect := func(s Seq) ([]temporal.Interval, error) {
			var out []temporal.Interval
			for _, it := range s {
				iv, err := it.Interval()
				if err != nil {
					return nil, err
				}
				out = append(out, iv)
			}
			return out, nil
		}
		a, err := collect(args[0])
		if err != nil {
			return nil, err
		}
		b, err := collect(args[1])
		if err != nil {
			return nil, err
		}
		var out Seq
		for _, iv := range temporal.Restructure(a, b) {
			out = append(out, NodeItem(intervalElement(iv)))
		}
		return out, nil
	}

	// Temporal aggregates: tavg/tsum/tcount over value-carrying nodes.
	taggs := map[string]func([]temporal.WeightedValue) []temporal.Step{
		"tavg": temporal.TAvg, "tsum": temporal.TSum, "tcount": temporal.TCount,
		"tmax": temporal.TMax, "tmin": temporal.TMin,
	}
	for name, agg := range taggs {
		agg := agg
		name := name
		f[name] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
			if err := wantN(name, args, 1); err != nil {
				return nil, err
			}
			var in []temporal.WeightedValue
			for _, it := range args[0] {
				iv, err := it.Interval()
				if err != nil {
					return nil, err
				}
				v, ok := it.NumberValue()
				if !ok {
					return nil, fmt.Errorf("xquery: %s() of non-numeric node %q", name, it.String())
				}
				in = append(in, temporal.WeightedValue{Value: v, Interval: iv})
			}
			var out Seq
			for _, st := range agg(in) {
				el := intervalElement(st.Interval)
				el.Name = "step"
				el.SetAttr("value", NumberItem(st.Value).StringValue())
				out = append(out, NodeItem(el))
			}
			return out, nil
		}
	}

	// rising($s): maximal intervals over which the (sorted) history is
	// strictly increasing — the RISING aggregate the paper mentions.
	f["rising"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("rising", args, 1); err != nil {
			return nil, err
		}
		var in []temporal.WeightedValue
		for _, it := range args[0] {
			iv, err := it.Interval()
			if err != nil {
				return nil, err
			}
			v, ok := it.NumberValue()
			if !ok {
				return nil, fmt.Errorf("xquery: rising() of non-numeric node %q", it.String())
			}
			in = append(in, temporal.WeightedValue{Value: v, Interval: iv})
		}
		var out Seq
		for _, iv := range temporal.Rising(in) {
			out = append(out, NodeItem(intervalElement(iv)))
		}
		return out, nil
	}

	// movingavg($s, $days): moving-window average of a value history
	// (the paper's moving-window aggregate example).
	f["movingavg"] = func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("movingavg", args, 2); err != nil {
			return nil, err
		}
		if len(args[1]) == 0 {
			return nil, fmt.Errorf("xquery: movingavg() needs a window")
		}
		win, ok := args[1][0].NumberValue()
		if !ok || win <= 0 {
			return nil, fmt.Errorf("xquery: movingavg() window must be positive")
		}
		var in []temporal.WeightedValue
		for _, it := range args[0] {
			iv, err := it.Interval()
			if err != nil {
				return nil, err
			}
			v, ok := it.NumberValue()
			if !ok {
				return nil, fmt.Errorf("xquery: movingavg() of non-numeric node %q", it.String())
			}
			in = append(in, temporal.WeightedValue{Value: v, Interval: iv})
		}
		var out Seq
		for _, st := range temporal.MovingWindowAvg(in, int(win), ev.Now) {
			el := intervalElement(st.Interval)
			el.Name = "step"
			el.SetAttr("value", NumberItem(st.Value).StringValue())
			out = append(out, NodeItem(el))
		}
		return out, nil
	}

	f["rtend"] = replaceForeverFunc("rtend", func(ev *Evaluator) string { return ev.Now.String() })
	f["externalnow"] = replaceForeverFunc("externalnow", func(*Evaluator) string { return "now" })

	// ---- valid time (DESIGN.md §16) ----
	// Valid-time twins of the transaction-time accessors. Versions
	// without explicit vstart/vend attributes carry the default
	// [tstart, Forever] (Item.ValidInterval), so these run unchanged on
	// pre-bitemporal documents.
	f["vstart"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("vstart", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		iv, err := args[0][0].ValidInterval()
		if err != nil {
			return nil, err
		}
		return Seq{DateItem(iv.Start)}, nil
	}
	f["vend"] = func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("vend", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		iv, err := args[0][0].ValidInterval()
		if err != nil {
			return nil, err
		}
		// Same externalization rule as tend(): the open end reads as
		// current-date(), never the internal sentinel.
		if iv.End.IsForever() {
			return Seq{DateItem(ev.Now)}, nil
		}
		return Seq{DateItem(iv.End)}, nil
	}
	// vinterval projects the valid interval into the standard interval
	// representation (tstart/tend attributes), so the whole interval
	// library — toverlaps, tcontains, timespan, restructure — applies
	// to valid time by composition: toverlaps(vinterval($a), vinterval($b)).
	f["vinterval"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("vinterval", args, 1); err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return nil, nil
		}
		iv, err := args[0][0].ValidInterval()
		if err != nil {
			return nil, err
		}
		return Seq{NodeItem(intervalElement(iv))}, nil
	}
	// vsnapshot($seq, $d): the versions valid at date d (nonsequenced
	// valid-time selection). vslice($seq, $s, $e): the versions whose
	// valid interval overlaps [s, e] (sequenced selection).
	f["vsnapshot"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("vsnapshot", args, 2); err != nil {
			return nil, err
		}
		if len(args[1]) == 0 {
			return nil, fmt.Errorf("xquery: vsnapshot() needs a date")
		}
		d, ok := args[1][0].DateValue()
		if !ok {
			return nil, fmt.Errorf("xquery: vsnapshot() expects a date")
		}
		var out Seq
		for _, it := range args[0] {
			iv, err := it.ValidInterval()
			if err != nil {
				return nil, err
			}
			if iv.Contains(d) {
				out = append(out, it)
			}
		}
		return out, nil
	}
	f["vslice"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("vslice", args, 3); err != nil {
			return nil, err
		}
		if len(args[1]) == 0 || len(args[2]) == 0 {
			return nil, fmt.Errorf("xquery: vslice() needs start and end dates")
		}
		s, ok1 := args[1][0].DateValue()
		e, ok2 := args[2][0].DateValue()
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("xquery: vslice() expects dates")
		}
		win, err := temporal.NewInterval(s, e)
		if err != nil {
			return nil, err
		}
		var out Seq
		for _, it := range args[0] {
			iv, err := it.ValidInterval()
			if err != nil {
				return nil, err
			}
			if iv.Overlaps(win) {
				out = append(out, it)
			}
		}
		return out, nil
	}
	// bicoalesce($seq): bitemporal coalescing. Each input node is an
	// assertion — value (name + text), valid interval, asserted at its
	// tstart — and the output is the currently-believed valid timeline
	// (temporal.ApplyAssertions): later assertions override earlier
	// ones where their valid intervals overlap, and same-value adjacent
	// pieces merge. Output nodes carry the input name and text with the
	// resolved valid interval as vstart/vend.
	f["bicoalesce"] = func(_ *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN("bicoalesce", args, 1); err != nil {
			return nil, err
		}
		type meta struct {
			name string
			text string
		}
		var asserted []temporal.Asserted
		metas := map[string]meta{}
		for _, it := range args[0] {
			if !it.IsNode() {
				return nil, fmt.Errorf("xquery: bicoalesce() expects nodes")
			}
			tiv, err := it.Interval()
			if err != nil {
				return nil, err
			}
			viv, err := it.ValidInterval()
			if err != nil {
				return nil, err
			}
			key := it.Node.Name + "\x00" + it.Node.TextContent()
			metas[key] = meta{name: it.Node.Name, text: it.Node.TextContent()}
			asserted = append(asserted, temporal.Asserted{Value: key, Valid: viv, At: tiv.Start})
		}
		var out Seq
		for _, tv := range temporal.ApplyAssertions(asserted) {
			m := metas[tv.Value]
			el := xmltree.NewElement(m.name).
				SetAttr("vstart", tv.Interval.Start.String()).
				SetAttr("vend", tv.Interval.End.String())
			if m.text != "" {
				el.AppendText(m.text)
			}
			out = append(out, NodeItem(el))
		}
		return out, nil
	}

	return f
}

// extremumKey maps an item to its comparison key for max()/min():
// interval-bearing element nodes compare by timespan (the QUERY 6
// idiom `max(restructure(...))`), other items by their own value.
func extremumKey(ev *Evaluator, it Item) Item {
	if it.IsNode() {
		if _, ok := it.Node.Attr("tstart"); ok {
			if iv, err := it.Interval(); err == nil {
				return NumberItem(float64(iv.Days(ev.Now)))
			}
		}
		return StringItem(it.Node.TextContent())
	}
	return it
}

// replaceForeverFunc builds rtend/externalnow: deep-copy the node and
// substitute "9999-12-31" where it encodes an open interval end —
// i.e. only in tend attributes. Non-temporal attributes (or a corrupt
// tstart) that happen to hold the forever sentinel are left alone.
func replaceForeverFunc(name string, repl func(*Evaluator) string) builtinFunc {
	forever := temporal.Forever.String()
	return func(ev *Evaluator, _ *env, args []Seq) (Seq, error) {
		if err := wantN(name, args, 1); err != nil {
			return nil, err
		}
		sub := repl(ev)
		var out Seq
		for _, it := range args[0] {
			if !it.IsNode() {
				if it.StringValue() == forever {
					out = append(out, StringItem(sub))
				} else {
					out = append(out, it)
				}
				continue
			}
			clone := it.Node.Clone()
			var walk func(n *xmltree.Node)
			walk = func(n *xmltree.Node) {
				for i := range n.Attrs {
					if n.Attrs[i].Name == "tend" && n.Attrs[i].Value == forever {
						n.Attrs[i].Value = sub
					}
				}
				for _, c := range n.Children {
					walk(c)
				}
			}
			walk(clone)
			out = append(out, NodeItem(clone))
		}
		return out, nil
	}
}

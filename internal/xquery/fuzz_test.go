package xquery

import (
	"testing"
	"time"

	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// FuzzParse checks the parser never panics and that anything it
// accepts can also be evaluated (or fails cleanly) against a tiny
// document.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`1 + 2 * 3`,
		`for $e in doc("d.xml")/r/e return $e/a`,
		`element x { for $t in doc("d.xml")/r/e[a="v"]/b return $t }`,
		`some $x in (1,2,3) satisfies $x > 2`,
		`<a b="{1+1}">{2}</a>`,
		`declare function local:f($x) { $x * 2 }; local:f(3)`,
		`let $s := doc("d.xml")/r/e/a return tavg($s)`,
		`if (true()) then "a" else "b"`,
		`//a[@tstart="1995-01-01"][position() = last()]`,
		`coalesce((<v tstart="1995-01-01" tend="1995-01-31">5</v>))`,
		`(: comment :) restructure((), ())`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := xmltree.MustParseString(
		`<r tstart="1990-01-01" tend="9999-12-31"><e tstart="1990-01-01" tend="9999-12-31">` +
			`<a tstart="1990-01-01" tend="9999-12-31">v</a>` +
			`<b tstart="1990-01-01" tend="1991-01-01">7</b></e></r>`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		ev := NewEvaluator(func(string) (*xmltree.Node, error) { return doc, nil })
		ev.Now = temporal.MustParseDate("1995-06-01")
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = ev.EvalQuery(q) // must not panic
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("evaluation hung for %q", src)
		}
	})
}

package xquery

import (
	"strings"
	"testing"
)

func TestUserDefinedFunction(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
declare function local:double($x) { $x * 2 };
local:double(21)`)
	if got.Serialize() != "42" {
		t.Errorf("double = %q", got.Serialize())
	}
}

func TestUserFunctionOverDocument(t *testing.T) {
	ev := newTestEvaluator(t)
	// A reusable "current salary of" helper, the extensibility story
	// the paper motivates.
	got := evalOK(t, ev, `
declare function local:current-salary($name) {
  for $s in doc("employees.xml")/employees/employee[name=$name]/salary
  where tend($s) = current-date()
  return number($s)
};
local:current-salary("Alice")`)
	if got.Serialize() != "65000" {
		t.Errorf("current salary = %q", got.Serialize())
	}
}

func TestUserFunctionRecursion(t *testing.T) {
	ev := newTestEvaluator(t)
	got := evalOK(t, ev, `
declare function local:fact($n) {
  if ($n <= 1) then 1 else $n * local:fact($n - 1)
};
local:fact(10)`)
	if got.Serialize() != "3628800" {
		t.Errorf("fact = %q", got.Serialize())
	}
	// Unbounded recursion is stopped.
	if _, err := ev.Eval(`
declare function local:loop($n) { local:loop($n) };
local:loop(1)`); err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("runaway recursion not caught: %v", err)
	}
}

func TestUserFunctionShadowsBuiltin(t *testing.T) {
	ev := newTestEvaluator(t)
	// The paper's temporal library is definable in XQuery itself:
	// a user timespan() overrides the native one.
	got := evalOK(t, ev, `
declare function timespan($e) { "overridden" };
timespan(doc("employees.xml")/employees/employee[1])`)
	if got.Serialize() != "overridden" {
		t.Errorf("override = %q", got.Serialize())
	}
}

func TestUserFunctionScoping(t *testing.T) {
	ev := newTestEvaluator(t)
	// Function bodies must not see the caller's variables.
	if _, err := ev.Eval(`
declare function local:leak() { $outer };
let $outer := 1 return local:leak()`); err == nil {
		t.Error("function body saw caller's variable")
	}
	// Parameters shadow nothing outside the call.
	got := evalOK(t, ev, `
declare function local:id($x) { $x };
let $x := "outer" return concat(local:id("inner"), "-", $x)`)
	if got.Serialize() != "inner-outer" {
		t.Errorf("scoping = %q", got.Serialize())
	}
}

func TestUserFunctionErrors(t *testing.T) {
	ev := newTestEvaluator(t)
	cases := []string{
		`declare function local:f($a) { $a }; local:f()`,                                // arity
		`declare function local:f() { 1 }; declare function local:f() { 2 }; local:f()`, // duplicate
		`declare function local:f() { 1 }`,                                              // missing body
		`declare function () { 1 }; 1`,                                                  // missing name
	}
	for _, q := range cases {
		if _, err := ev.Eval(q); err == nil {
			t.Errorf("Eval(%q): expected error", q)
		}
	}
}

func TestPaperStyleTemporalUDF(t *testing.T) {
	ev := newTestEvaluator(t)
	// Section 4 flavor: a since-predicate written as a UDF.
	got := evalOK(t, ev, `
declare function local:held-since($e, $d) {
  some $t in $e/title satisfies
    (tend($t) = current-date() and tstart($t) <= $d)
};
for $e in doc("employees.xml")/employees/employee
where local:held-since($e, xs:date("1996-08-01"))
return string($e/name[1])`)
	if got.Serialize() != "Alice" {
		t.Errorf("held-since = %q", got.Serialize())
	}
}

package xquery

import (
	"fmt"
	"testing"

	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// The H-documents of the paper's Figures 3 and 4 (employees.xml and
// depts.xml for Tables 1 and 2), with Alice added as a current
// employee so queries about "now" have a live target.
const employeesXML = `
<employees tstart="1995-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="1996-12-31">
    <id tstart="1995-01-01" tend="1996-12-31">1001</id>
    <name tstart="1995-01-01" tend="1996-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="1996-12-31">70000</salary>
    <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
    <title tstart="1995-10-01" tend="1996-01-31">Sr Engineer</title>
    <title tstart="1996-02-01" tend="1996-12-31">TechLeader</title>
    <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
    <deptno tstart="1995-10-01" tend="1996-12-31">d02</deptno>
  </employee>
  <employee tstart="1995-03-01" tend="9999-12-31">
    <id tstart="1995-03-01" tend="9999-12-31">1002</id>
    <name tstart="1995-03-01" tend="9999-12-31">Alice</name>
    <salary tstart="1995-03-01" tend="1995-12-31">50000</salary>
    <salary tstart="1996-01-01" tend="9999-12-31">65000</salary>
    <title tstart="1995-03-01" tend="1996-06-30">Engineer</title>
    <title tstart="1996-07-01" tend="9999-12-31">Sr Engineer</title>
    <deptno tstart="1995-03-01" tend="9999-12-31">d01</deptno>
  </employee>
  <employee tstart="1995-01-01" tend="1996-12-31">
    <id tstart="1995-01-01" tend="1996-12-31">1003</id>
    <name tstart="1995-01-01" tend="1996-12-31">Carol</name>
    <salary tstart="1995-01-01" tend="1996-12-31">55000</salary>
    <title tstart="1995-01-01" tend="1996-12-31">Engineer</title>
    <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
    <deptno tstart="1995-10-01" tend="1996-12-31">d02</deptno>
  </employee>
</employees>`

const deptsXML = `
<depts tstart="1992-01-01" tend="9999-12-31">
  <dept tstart="1994-01-01" tend="1998-12-31">
    <deptno tstart="1994-01-01" tend="1998-12-31">d01</deptno>
    <deptname tstart="1994-01-01" tend="1998-12-31">QA</deptname>
    <mgrno tstart="1994-01-01" tend="1998-12-31">2501</mgrno>
  </dept>
  <dept tstart="1992-01-01" tend="1998-12-31">
    <deptno tstart="1992-01-01" tend="1998-12-31">d02</deptno>
    <deptname tstart="1992-01-01" tend="1998-12-31">RD</deptname>
    <mgrno tstart="1992-01-01" tend="1996-12-31">3402</mgrno>
    <mgrno tstart="1997-01-01" tend="1998-12-31">1009</mgrno>
  </dept>
  <dept tstart="1993-01-01" tend="1997-12-31">
    <deptno tstart="1993-01-01" tend="1997-12-31">d03</deptno>
    <deptname tstart="1993-01-01" tend="1997-12-31">Sales</deptname>
    <mgrno tstart="1993-01-01" tend="1997-12-31">4748</mgrno>
  </dept>
</depts>`

// newTestEvaluator serves the two fixture documents under all the
// names the paper's queries use.
func newTestEvaluator(t *testing.T) *Evaluator {
	t.Helper()
	emp := xmltree.MustParseString(employeesXML)
	dep := xmltree.MustParseString(deptsXML)
	ev := NewEvaluator(func(name string) (*xmltree.Node, error) {
		switch name {
		case "employees.xml", "emp.xml":
			return emp, nil
		case "depts.xml", "departments.xml":
			return dep, nil
		}
		return nil, fmt.Errorf("no document %q", name)
	})
	ev.Now = temporal.MustParseDate("1997-01-01")
	return ev
}

func evalOK(t *testing.T, ev *Evaluator, q string) Seq {
	t.Helper()
	s, err := ev.Eval(q)
	if err != nil {
		t.Fatalf("Eval(%q): %v", q, err)
	}
	return s
}

package sqlengine

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"archis/internal/obs"
	"archis/internal/relstore"
	"archis/internal/temporal"
)

// indexJoinThreshold: below this many outer rows, an index
// nested-loop join beats building a hash table over the (possibly
// huge) inner table — the Q1/Q3 "single object" shape.
const indexJoinThreshold = 4096

// source abstracts base and virtual tables for scanning.
type source struct {
	alias   string
	schema  relstore.Schema
	base    *relstore.Table // nil for virtual
	virtual VirtualTable
}

func (s *source) scan(bounds []relstore.ZoneBound, fn func(relstore.Row) bool) error {
	if s.base != nil {
		return s.base.Scan(bounds, func(_ relstore.RID, row relstore.Row) bool { return fn(row) })
	}
	return s.virtual.Scan(bounds, fn)
}

// scanBorrow is scan on the zero-copy path: rows may alias shared
// immutable storage and must be treated as read-only (virtual tables
// already hand out borrowed rows; see VirtualTable).
func (s *source) scanBorrow(bounds []relstore.ZoneBound, fn func(relstore.Row) bool) error {
	if s.base != nil {
		return s.base.ScanBorrow(bounds, func(_ relstore.RID, row relstore.Row) bool { return fn(row) })
	}
	return s.virtual.Scan(bounds, fn)
}

// morselSource returns the storage behind s as a morsel provider, if
// it supports one (base tables always do; virtual tables opt in).
func (s *source) morselSource() (relstore.MorselSource, bool) {
	if s.base != nil {
		return s.base, true
	}
	ms, ok := s.virtual.(relstore.MorselSource)
	return ms, ok
}

// SnapshotBinder is implemented by virtual tables that can rebind
// themselves onto a pinned relstore snapshot (segment and BlockZIP
// stores). resolveSource uses it so a SELECT sees one consistent
// version of the backing tables AND the store's own metadata.
type SnapshotBinder interface {
	BindSnapshot(sn *relstore.Snapshot) VirtualTable
}

// resolveSource binds a FROM reference to storage. With a snapshot the
// read runs against the pinned version: base tables come from the
// snapshot (frozen copies), and virtual tables that implement
// SnapshotBinder are rebound onto it. A nil snapshot (DML target
// resolution, legacy callers) reads the live tables.
func (en *Engine) resolveSource(ref TableRef, sn *relstore.Snapshot) (*source, error) {
	if vt, ok := en.lookupVirtual(ref.Table); ok {
		if sn != nil {
			if sb, ok := vt.(SnapshotBinder); ok {
				vt = sb.BindSnapshot(sn)
			}
		}
		return &source{alias: ref.Alias, schema: vt.Schema(), virtual: vt}, nil
	}
	if sn != nil {
		if tbl, ok := sn.Table(ref.Table); ok {
			return &source{alias: ref.Alias, schema: tbl.Schema(), base: tbl}, nil
		}
	}
	tbl, err := en.DB.MustTable(ref.Table)
	if err != nil {
		return nil, err
	}
	return &source{alias: ref.Alias, schema: tbl.Schema(), base: tbl}, nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		out = splitAnd(b.L, out)
		return splitAnd(b.R, out)
	}
	return append(out, e)
}

// exprAliases collects the table aliases referenced by an expression,
// resolving unqualified column names against the candidate sources.
func exprAliases(e Expr, sources []*source, out map[string]bool) error {
	switch x := e.(type) {
	case nil, *Literal:
	case *ColRef:
		if x.Qual != "" {
			out[strings.ToLower(x.Qual)] = true
			return nil
		}
		matches := 0
		var owner string
		for _, s := range sources {
			if s.schema.ColumnIndex(x.Name) >= 0 {
				matches++
				owner = s.alias
			}
		}
		if matches > 1 {
			return fmt.Errorf("sql: ambiguous column %s", x.Name)
		}
		if matches == 1 {
			out[strings.ToLower(owner)] = true
		}
	case *BinaryExpr:
		if err := exprAliases(x.L, sources, out); err != nil {
			return err
		}
		return exprAliases(x.R, sources, out)
	case *UnaryExpr:
		return exprAliases(x.X, sources, out)
	case *IsNullExpr:
		return exprAliases(x.X, sources, out)
	case *InExpr:
		if err := exprAliases(x.X, sources, out); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := exprAliases(it, sources, out); err != nil {
				return err
			}
		}
	case *BetweenExpr:
		for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
			if err := exprAliases(sub, sources, out); err != nil {
				return err
			}
		}
	case *FuncCall:
		for _, a := range x.Args {
			if err := exprAliases(a, sources, out); err != nil {
				return err
			}
		}
	case *XMLElementExpr:
		for _, a := range x.Attrs {
			if err := exprAliases(a.Expr, sources, out); err != nil {
				return err
			}
		}
		for _, c := range x.Children {
			if err := exprAliases(c, sources, out); err != nil {
				return err
			}
		}
	case *XMLForestExpr:
		for _, a := range x.Items {
			if err := exprAliases(a.Expr, sources, out); err != nil {
				return err
			}
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			if err := exprAliases(w.Cond, sources, out); err != nil {
				return err
			}
			if err := exprAliases(w.Result, sources, out); err != nil {
				return err
			}
		}
		if x.Else != nil {
			return exprAliases(x.Else, sources, out)
		}
	}
	return nil
}

// constValue evaluates an expression with no column references.
func (en *Engine) constValue(e Expr) (relstore.Value, bool) {
	fn, err := en.compileExpr(e, &rowLayout{})
	if err != nil {
		return relstore.Null, false
	}
	v, err := fn(nil)
	if err != nil {
		return relstore.Null, false
	}
	return v, true
}

// colConstConjunct recognizes `col op const` (or reversed) against one
// source, returning the column position, normalized op and value.
func (en *Engine) colConstConjunct(e Expr, s *source, sources []*source) (col int, op string, v relstore.Value, ok bool) {
	b, isBin := e.(*BinaryExpr)
	if !isBin {
		return 0, "", relstore.Null, false
	}
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return 0, "", relstore.Null, false
	}
	try := func(colSide, constSide Expr, op string) (int, string, relstore.Value, bool) {
		ref, isRef := colSide.(*ColRef)
		if !isRef {
			return 0, "", relstore.Null, false
		}
		if ref.Qual != "" && !strings.EqualFold(ref.Qual, s.alias) {
			return 0, "", relstore.Null, false
		}
		if ref.Qual == "" {
			// Must resolve uniquely to this source.
			owners := map[string]bool{}
			if err := exprAliases(ref, sources, owners); err != nil || len(owners) != 1 || !owners[strings.ToLower(s.alias)] {
				return 0, "", relstore.Null, false
			}
		}
		pos := s.schema.ColumnIndex(ref.Name)
		if pos < 0 {
			return 0, "", relstore.Null, false
		}
		aliasSet := map[string]bool{}
		if err := exprAliases(constSide, sources, aliasSet); err != nil || len(aliasSet) > 0 {
			return 0, "", relstore.Null, false
		}
		cv, okc := en.constValue(constSide)
		if !okc || cv.IsNull() {
			return 0, "", relstore.Null, false
		}
		return pos, op, cv, true
	}
	if c, o, cv, okc := try(b.L, b.R, b.Op); okc {
		return c, o, cv, true
	}
	flip := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
	if c, o, cv, okc := try(b.R, b.L, flip[b.Op]); okc {
		return c, o, cv, true
	}
	return 0, "", relstore.Null, false
}

// scanPlan is the compiled single-table access plan: pushed-down zone
// bounds, an optional equality-index probe, the residual filter, and
// (planner on) the cardinality estimates behind the choice.
type scanPlan struct {
	bounds  []relstore.ZoneBound
	eqVal   relstore.Value
	eqIndex *relstore.Index
	filter  evalFunc
	est     planEstimate
}

// planScan builds the access plan for one source: index selection,
// zone-bound pushdown, residual filter compilation. With the planner
// on, the eq-index probe is taken only when the cost model prefers it
// over the bounded scan and the most selective candidate wins; with
// the planner off, the first eq conjunct with an index wins
// unconditionally (the legacy heuristic).
func (en *Engine) planScan(s *source, conjuncts []Expr, sources []*source) (*scanPlan, error) {
	layout := layoutFor(s.alias, s.schema)
	p := &scanPlan{}
	var cands []eqCandidate
	var conj conjunctStats
	for _, c := range conjuncts {
		col, op, v, ok := en.colConstConjunct(c, s, sources)
		if !ok {
			conj.opaque++
			continue
		}
		// Zone bound for INT/DATE columns.
		ct := s.schema.Columns[col].Type
		zv := v
		if ct == relstore.TypeDate && v.Kind == relstore.TypeString {
			if d, err := temporal.ParseDate(strings.TrimSpace(v.S)); err == nil {
				zv = relstore.DateV(d)
			}
		}
		if (ct == relstore.TypeInt || ct == relstore.TypeDate) &&
			(zv.Kind == relstore.TypeInt || zv.Kind == relstore.TypeDate) {
			p.bounds = append(p.bounds, relstore.ZoneBound{Col: col, Op: op, Bound: zv.I})
		}
		// Index equality candidate.
		if op == "=" {
			added := false
			if s.base != nil {
				if ix := s.base.IndexOn(col); ix != nil {
					cv, err := coerce(zv, ct)
					if err == nil {
						cands = append(cands, eqCandidate{col: col, val: cv, ix: ix})
						added = true
					}
				}
			}
			if !added {
				conj.eqUnindexed++
			}
		} else {
			conj.ranges++
		}
	}
	if en.Planner {
		en.chooseAccess(s, p, cands, conj)
	} else if len(cands) > 0 {
		p.eqVal, p.eqIndex = cands[0].val, cands[0].ix
	}

	// Compile the full residual predicate (reapplying pushed bounds is
	// harmless and keeps correctness independent of pruning).
	if len(conjuncts) > 0 {
		var pred Expr = conjuncts[0]
		for _, c := range conjuncts[1:] {
			pred = &BinaryExpr{Op: "AND", L: pred, R: c}
		}
		var err error
		if p.filter, err = en.compileExpr(pred, layout); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// scanOne executes the single-table part of the plan: index selection,
// zone-bound pushdown, residual filtering. Returned rows are borrowed
// (read-only, may alias shared storage).
func (en *Engine) scanOne(ctx context.Context, s *source, conjuncts []Expr, sources []*source) ([]relstore.Row, error) {
	p, err := en.planScan(s, conjuncts, sources)
	if err != nil {
		return nil, err
	}
	var out []relstore.Row
	err = en.runScanPlan(ctx, s, p, func(row relstore.Row) (bool, error) {
		out = append(out, row)
		return true, nil
	})
	return out, err
}

// runScanPlan drives a compiled plan (index probe or bounded borrow
// scan) and streams each row surviving the residual filter into emit.
// Rows are borrowed; emit returning false stops the scan early. The
// context is polled at row granularity so a cancelled query stops
// mid-scan.
func (en *Engine) runScanPlan(ctx context.Context, s *source, p *scanPlan, emit func(relstore.Row) (bool, error)) error {
	cc := newCancelProbe(ctx)
	pass := func(row relstore.Row) (bool, error) {
		if cc.tick() {
			return false, cc.err()
		}
		if p.filter != nil {
			v, err := p.filter(row)
			if err != nil {
				return false, err
			}
			if !v.AsBool() {
				return true, nil
			}
		}
		return emit(row)
	}

	if p.eqIndex != nil {
		// Probed rows ride the zero-copy path like scans do: GetBorrow
		// hands out rows aliasing immutable page-cache storage, so the
		// probe loop allocates nothing per row.
		for _, rid := range p.eqIndex.Lookup([]relstore.Value{p.eqVal}) {
			row, live, err := s.base.GetBorrow(rid)
			if err != nil {
				return err
			}
			if !live {
				continue
			}
			if cont, err := pass(row); err != nil || !cont {
				return err
			}
		}
		return nil
	}

	var scanErr error
	err := s.scanBorrow(p.bounds, func(row relstore.Row) bool {
		cont, err := pass(row)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	if err == nil {
		err = scanErr
	}
	return err
}

// equiJoinCond recognizes `a.x = b.y` between a bound alias set and a
// new alias.
type equiJoin struct {
	boundPos int // column position in the joined layout
	newPos   int // column position in the new source's schema
}

func (en *Engine) equiJoinConds(conjuncts []Expr, joined *rowLayout, joinedAliases map[string]bool, s *source, sources []*source) ([]equiJoin, []Expr) {
	var joins []equiJoin
	var rest []Expr
	for _, c := range conjuncts {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			rest = append(rest, c)
			continue
		}
		lref, lok := b.L.(*ColRef)
		rref, rok := b.R.(*ColRef)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		side := func(ref *ColRef) (onNew bool, onBound bool) {
			if ref.Qual != "" {
				q := strings.ToLower(ref.Qual)
				return q == strings.ToLower(s.alias), joinedAliases[q]
			}
			owners := map[string]bool{}
			if err := exprAliases(ref, sources, owners); err != nil || len(owners) != 1 {
				return false, false
			}
			for o := range owners {
				return o == strings.ToLower(s.alias), joinedAliases[o]
			}
			return false, false
		}
		lNew, lBound := side(lref)
		rNew, rBound := side(rref)
		var newRef, boundRef *ColRef
		switch {
		case lNew && rBound:
			newRef, boundRef = lref, rref
		case rNew && lBound:
			newRef, boundRef = rref, lref
		default:
			rest = append(rest, c)
			continue
		}
		np := s.schema.ColumnIndex(newRef.Name)
		bp, err := joined.resolve(boundRef.Qual, boundRef.Name)
		if np < 0 || err != nil {
			rest = append(rest, c)
			continue
		}
		joins = append(joins, equiJoin{boundPos: bp, newPos: np})
	}
	return joins, rest
}

// appendKey appends a self-delimiting, collision-proof encoding of
// vals to dst — the shared scratch-buffer key builder for hash joins,
// GROUP BY and DISTINCT. Every value starts with its kind tag and
// carries a fixed-width payload (floats, bools), a varint (ints,
// dates) or a uvarint length prefix (text, blobs), so no two distinct
// value lists can share an encoding. The previous terminator-based
// scheme collided whenever a payload embedded the terminator:
// ("a\x00\x03b","c") and ("a","b\x00\x03c") encoded identically.
func appendKey(dst []byte, vals []relstore.Value) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case relstore.TypeNull:
			// The kind tag alone identifies NULL.
		case relstore.TypeInt, relstore.TypeDate:
			n := binary.PutVarint(tmp[:], v.I)
			dst = append(dst, tmp[:n]...)
		case relstore.TypeFloat:
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(v.F))
			dst = append(dst, tmp[:8]...)
		case relstore.TypeBool:
			if v.Truth {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case relstore.TypeBytes:
			n := binary.PutUvarint(tmp[:], uint64(len(v.B)))
			dst = append(dst, tmp[:n]...)
			dst = append(dst, v.B...)
		default:
			s := v.Text()
			n := binary.PutUvarint(tmp[:], uint64(len(s)))
			dst = append(dst, tmp[:n]...)
			dst = append(dst, s...)
		}
	}
	return dst
}

func (en *Engine) execSelect(ctx context.Context, stmt *SelectStmt, sp *obs.Span, sn *relstore.Snapshot) (*Result, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	if sn != nil {
		sp.SetInt("snapshot_lsn", int64(sn.LSN()))
	}
	sources := make([]*source, len(stmt.From))
	seen := map[string]bool{}
	for i, ref := range stmt.From {
		s, err := en.resolveSource(ref, sn)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(ref.Alias)
		if seen[key] {
			return nil, fmt.Errorf("sql: duplicate alias %s", ref.Alias)
		}
		seen[key] = true
		sources[i] = s
	}

	var conjuncts []Expr
	if stmt.Where != nil {
		conjuncts = splitAnd(stmt.Where, nil)
	}
	// Valid-time scope (validtime.go): rewritten to plain conjuncts
	// here, before partitioning, so pushdown and planning see them as
	// ordinary predicates.
	if d, ok := ValidAsOf(ctx); ok {
		conjuncts = append(conjuncts, validConjuncts(sources, d)...)
	}

	// Partition conjuncts by the aliases they touch.
	perAlias := map[string][]Expr{}
	var multi []Expr
	for _, c := range conjuncts {
		aliases := map[string]bool{}
		if err := exprAliases(c, sources, aliases); err != nil {
			return nil, err
		}
		switch len(aliases) {
		case 0, 1:
			target := ""
			for a := range aliases {
				target = a
			}
			if target == "" {
				multi = append(multi, c) // constant predicate; apply at end
			} else {
				perAlias[target] = append(perAlias[target], c)
			}
		default:
			multi = append(multi, c)
		}
	}

	// Single-table statements with no usable point index take the
	// vectorized path when the storage streams column batches, else
	// fan out over row morsels when the engine is configured for
	// parallel scans.
	if len(sources) == 1 {
		if res, handled, err := en.execSingleBatch(ctx, stmt, sources[0], conjuncts, sources, sp); handled {
			return res, err
		}
		if res, handled, err := en.execSingleParallel(ctx, stmt, sources[0], conjuncts, sources, sp); handled {
			return res, err
		}
	}

	// Plan the fold order. With the planner on, sources are reordered
	// greedily by estimated cardinality and each fold gets a static,
	// estimate-driven strategy; with it off, FROM order and the legacy
	// runtime heuristics apply.
	ordered := sources
	var jplan *joinPlan
	if en.Planner && len(sources) > 1 {
		var err error
		if jplan, err = en.planJoins(sources, perAlias, multi); err != nil {
			return nil, err
		}
		ordered = make([]*source, len(sources))
		for i, idx := range jplan.order {
			ordered[i] = sources[idx]
		}
	}

	// Scan the first source, then fold in the rest. When the first fold
	// is a build-on-inner hash join, the initial scan is fused into the
	// probe (hashJoinFirst), which streams the outer side and can fan
	// it out over morsels.
	first := ordered[0]
	firstConjuncts := perAlias[strings.ToLower(first.alias)]
	layout := layoutFor(first.alias, first.schema)
	joinedAliases := map[string]bool{strings.ToLower(first.alias): true}
	pendingMulti := multi
	var rows []relstore.Row
	var err error
	scanned := false

	// scanFirst runs the serial scan of the leading source under a
	// "scan" span.
	scanFirst := func() error {
		ss := sp.Child("scan")
		ss.SetAttr("table", first.alias)
		var plan *scanPlan
		if plan, err = en.planScan(first, firstConjuncts, sources); err != nil {
			ss.End()
			return err
		}
		if plan.est.Planned {
			ss.SetAttr("access", plan.est.Access)
			ss.SetInt("est_rows", int64(plan.est.OutRows))
		}
		err = en.runScanPlan(ctx, first, plan, func(row relstore.Row) (bool, error) {
			rows = append(rows, row)
			return true, nil
		})
		ss.AddRows(0, int64(len(rows)))
		ss.End()
		return err
	}

	foldProbe := newCancelProbe(ctx)
	for fi, s := range ordered[1:] {
		if foldProbe.check() {
			return nil, foldProbe.err()
		}
		joins, rest := en.equiJoinConds(pendingMulti, layout, joinedAliases, s, sources)
		pendingMulti = rest
		newLayout := layout.concat(layoutFor(s.alias, s.schema))

		singles := perAlias[strings.ToLower(s.alias)]
		var fp *foldPlan
		if jplan != nil {
			fp = &jplan.folds[fi]
		}
		if !scanned {
			scanned = true
			fuse := len(joins) > 0
			if fp != nil {
				fuse = fuse && fp.strategy == stratHashBuildInner
			} else {
				// Legacy rule: fuse only when the index-join plan is
				// off the table regardless of outer cardinality.
				fuse = fuse && !(s.base != nil && s.base.IndexOn(joins[0].newPos) != nil)
			}
			if fuse {
				rows, err = en.hashJoinFirst(ctx, first, firstConjuncts, s, joins, singles, sources, fp, sp)
				if err != nil {
					return nil, err
				}
				layout = newLayout
				joinedAliases[strings.ToLower(s.alias)] = true
				continue
			}
			if err := scanFirst(); err != nil {
				return nil, err
			}
		}
		in := int64(len(rows))
		strat := stratNested
		switch {
		case fp != nil:
			strat = fp.strategy
		case len(joins) > 0 && s.base != nil && len(rows) <= indexJoinThreshold && s.base.IndexOn(joins[0].newPos) != nil:
			// Legacy rule: index nested-loop join on the first equi key
			// below the fixed outer-row threshold.
			strat = stratIndex
		case len(joins) > 0:
			strat = stratHashBuildInner
		}
		switch strat {
		case stratIndex:
			// Index nested-loop join on the first equi key; remaining
			// keys and single-table predicates filter after the probe.
			js := sp.Child("join:index")
			js.SetAttr("table", s.alias)
			rows, err = en.indexJoin(ctx, rows, s, joins, singles, sources, newLayout)
			js.AddRows(in, int64(len(rows)))
			js.End()
		case stratHashBuildInner:
			rows, err = en.hashJoin(ctx, rows, s, joins, singles, sources, fp, sp)
		case stratHashBuildOuter:
			rows, err = en.hashJoinBuildOuter(ctx, rows, s, joins, singles, sources, fp, sp)
		default:
			js := sp.Child("join:nested-loop")
			js.SetAttr("table", s.alias)
			rows, err = en.nestedLoopJoin(ctx, rows, s, singles, sources)
			js.AddRows(in, int64(len(rows)))
			js.End()
		}
		if err != nil {
			return nil, err
		}
		layout = newLayout
		joinedAliases[strings.ToLower(s.alias)] = true
	}
	if !scanned {
		if err := scanFirst(); err != nil {
			return nil, err
		}
	}

	// Residual predicates.
	if len(pendingMulti) > 0 {
		fs := sp.Child("filter")
		fs.AddRows(int64(len(rows)), 0)
		var pred Expr = pendingMulti[0]
		for _, c := range pendingMulti[1:] {
			pred = &BinaryExpr{Op: "AND", L: pred, R: c}
		}
		fn, err := en.compileExpr(pred, layout)
		if err != nil {
			return nil, err
		}
		fcc := newCancelProbe(ctx)
		kept := rows[:0]
		for _, r := range rows {
			if fcc.tick() {
				return nil, fcc.err()
			}
			v, err := fn(r)
			if err != nil {
				return nil, err
			}
			if v.AsBool() {
				kept = append(kept, r)
			}
		}
		rows = kept
		fs.AddRows(0, int64(len(rows)))
		fs.End()
	}

	return en.project(stmt, rows, layout, sources, sp)
}

func (en *Engine) indexJoin(ctx context.Context, outer []relstore.Row, s *source, joins []equiJoin, singles []Expr, sources []*source, newLayout *rowLayout) ([]relstore.Row, error) {
	cc := newCancelProbe(ctx)
	ix := s.base.IndexOn(joins[0].newPos)
	// Compile the inner-side residual (single-table predicates).
	var filter evalFunc
	if len(singles) > 0 {
		var pred Expr = singles[0]
		for _, c := range singles[1:] {
			pred = &BinaryExpr{Op: "AND", L: pred, R: c}
		}
		var err error
		if filter, err = en.compileExpr(pred, layoutFor(s.alias, s.schema)); err != nil {
			return nil, err
		}
	}
	var out []relstore.Row
	for _, o := range outer {
		if cc.tick() {
			return nil, cc.err()
		}
		probe := o[joins[0].boundPos]
		if probe.IsNull() {
			continue
		}
		pv, err := coerce(probe, s.schema.Columns[joins[0].newPos].Type)
		if err != nil {
			continue
		}
		for _, rid := range ix.Lookup([]relstore.Value{pv}) {
			row, live, err := s.base.GetBorrow(rid)
			if err != nil {
				return nil, err
			}
			if !live {
				continue
			}
			match := true
			for _, j := range joins[1:] {
				if compareValues(o[j.boundPos], row[j.newPos]) != 0 || row[j.newPos].IsNull() {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if filter != nil {
				v, err := filter(row)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					continue
				}
			}
			combined := make(relstore.Row, 0, len(o)+len(row))
			combined = append(combined, o...)
			combined = append(combined, row...)
			out = append(out, combined)
		}
	}
	return out, nil
}

func (en *Engine) nestedLoopJoin(ctx context.Context, outer []relstore.Row, s *source, singles []Expr, sources []*source) ([]relstore.Row, error) {
	inner, err := en.scanOne(ctx, s, singles, sources)
	if err != nil {
		return nil, err
	}
	cc := newCancelProbe(ctx)
	// Cap the up-front allocation: a cross product's full extent can
	// be enormous, and reserving it all before the first probe would
	// delay cancellation by the whole (possibly huge) zeroing.
	capHint := len(outer) * len(inner)
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]relstore.Row, 0, capHint)
	for _, o := range outer {
		for _, m := range inner {
			if cc.tick() {
				return nil, cc.err()
			}
			combined := make(relstore.Row, 0, len(o)+len(m))
			combined = append(combined, o...)
			combined = append(combined, m...)
			out = append(out, combined)
		}
	}
	return out, nil
}

// ---- projection, grouping, ordering ----

// hasAggregate walks an expression for aggregate calls.
func (en *Engine) hasAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(sub Expr) {
		if fc, ok := sub.(*FuncCall); ok {
			if _, isAgg := en.aggFuncs[fc.Name]; isAgg {
				found = true
			}
		}
	})
	return found
}

func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *UnaryExpr:
		walkExpr(x.X, visit)
	case *IsNullExpr:
		walkExpr(x.X, visit)
	case *InExpr:
		walkExpr(x.X, visit)
		for _, it := range x.List {
			walkExpr(it, visit)
		}
	case *BetweenExpr:
		walkExpr(x.X, visit)
		walkExpr(x.Lo, visit)
		walkExpr(x.Hi, visit)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *XMLElementExpr:
		for _, a := range x.Attrs {
			walkExpr(a.Expr, visit)
		}
		for _, c := range x.Children {
			walkExpr(c, visit)
		}
	case *XMLForestExpr:
		for _, a := range x.Items {
			walkExpr(a.Expr, visit)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.Cond, visit)
			walkExpr(w.Result, visit)
		}
		walkExpr(x.Else, visit)
	}
}

// isGrouped reports whether the statement runs through the grouping
// pipeline (explicit GROUP BY or aggregates in SELECT/HAVING).
func (en *Engine) isGrouped(stmt *SelectStmt) bool {
	if len(stmt.GroupBy) > 0 {
		return true
	}
	for _, it := range stmt.Select {
		if it.Expr != nil && en.hasAggregate(it.Expr) {
			return true
		}
	}
	return stmt.Having != nil && en.hasAggregate(stmt.Having)
}

func (en *Engine) project(stmt *SelectStmt, rows []relstore.Row, layout *rowLayout, sources []*source, sp *obs.Span) (*Result, error) {
	if en.isGrouped(stmt) {
		return en.projectGrouped(stmt, rows, layout, sp)
	}
	ps := sp.Child("project")

	// Expand stars.
	var cols []string
	var evals []evalFunc
	var orderFns []evalFunc
	for _, it := range stmt.Select {
		if it.Star {
			// Expand in FROM order (sources), not physical layout
			// order: join reordering permutes the layout, but SELECT *
			// must keep the declared column order either way.
			for _, src := range sources {
				if it.Qual != "" && !strings.EqualFold(src.alias, it.Qual) {
					continue
				}
				for _, col := range src.schema.Columns {
					pos, err := layout.resolve(src.alias, col.Name)
					if err != nil {
						return nil, err
					}
					cols = append(cols, col.Name)
					evals = append(evals, func(row relstore.Row) (relstore.Value, error) { return row[pos], nil })
				}
			}
			continue
		}
		fn, err := en.compileExpr(it.Expr, layout)
		if err != nil {
			return nil, err
		}
		evals = append(evals, fn)
		cols = append(cols, selectItemName(it, len(cols)))
	}
	for _, o := range stmt.OrderBy {
		fn, err := en.compileExpr(o.Expr, layout)
		if err != nil {
			return nil, err
		}
		orderFns = append(orderFns, fn)
	}

	type outRow struct {
		vals relstore.Row
		keys relstore.Row
	}
	outs := make([]outRow, 0, len(rows))
	for _, r := range rows {
		vals := make(relstore.Row, len(evals))
		for i, fn := range evals {
			v, err := fn(r)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		keys := make(relstore.Row, len(orderFns))
		for i, fn := range orderFns {
			v, err := fn(r)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		outs = append(outs, outRow{vals, keys})
	}
	if stmt.Distinct {
		seen := map[string]bool{}
		var enc []byte
		kept := outs[:0]
		for _, o := range outs {
			enc = appendKey(enc[:0], o.vals)
			if seen[string(enc)] {
				continue
			}
			seen[string(enc)] = true
			kept = append(kept, o)
		}
		outs = kept
	}
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, o := range stmt.OrderBy {
				c := compareValues(outs[i].keys[k], outs[j].keys[k])
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	res := &Result{Columns: cols}
	for _, o := range outs {
		res.Rows = append(res.Rows, o.vals)
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
	}
	ps.AddRows(int64(len(rows)), int64(len(res.Rows)))
	ps.End()
	return res, nil
}

func selectItemName(it SelectItem, ordinal int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*ColRef); ok {
		return ref.Name
	}
	if el, ok := it.Expr.(*XMLElementExpr); ok {
		return el.Tag
	}
	if fc, ok := it.Expr.(*FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return fmt.Sprintf("col%d", ordinal+1)
}

// aggBinding couples one aggregate call with its compiled argument
// evaluators and a slot in the group layout.
type aggBinding struct {
	call *FuncCall
	args []evalFunc
	mk   AggFunc
	slot int
}

// groupPlan is a compiled grouping pipeline: key evaluators,
// aggregate bindings and the group-row layout. It is immutable after
// compilation and safe to share across goroutines; per-scan state
// lives in groupAcc.
type groupPlan struct {
	stmt        *SelectStmt
	aggs        []aggBinding
	aggSlot     map[*FuncCall]int
	keyFns      []evalFunc
	groupLayout *rowLayout
}

// compileGrouping builds the grouping plan for an aggregate query:
// aggregate calls collected from SELECT, HAVING and ORDER BY, group
// keys compiled, and the group layout laid out as key columns (named
// when they are plain ColRefs) followed by aggregate slots.
func (en *Engine) compileGrouping(stmt *SelectStmt, layout *rowLayout) (*groupPlan, error) {
	p := &groupPlan{stmt: stmt, aggSlot: map[*FuncCall]int{}}
	collect := func(e Expr) error {
		var walkErr error
		walkExpr(e, func(sub Expr) {
			fc, ok := sub.(*FuncCall)
			if !ok {
				return
			}
			mk, isAgg := en.aggFuncs[fc.Name]
			if !isAgg {
				return
			}
			if _, done := p.aggSlot[fc]; done {
				return
			}
			args := make([]evalFunc, len(fc.Args))
			for i, a := range fc.Args {
				fn, err := en.compileExpr(a, layout)
				if err != nil {
					walkErr = err
					return
				}
				args[i] = fn
			}
			slot := len(stmt.GroupBy) + len(p.aggs)
			p.aggSlot[fc] = slot
			p.aggs = append(p.aggs, aggBinding{call: fc, args: args, mk: mk, slot: slot})
		})
		return walkErr
	}
	for _, it := range stmt.Select {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregates")
		}
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, err
		}
	}

	p.keyFns = make([]evalFunc, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		fn, err := en.compileExpr(g, layout)
		if err != nil {
			return nil, err
		}
		p.keyFns[i] = fn
	}

	p.groupLayout = &rowLayout{}
	for i, g := range stmt.GroupBy {
		if ref, ok := g.(*ColRef); ok {
			p.groupLayout.cols = append(p.groupLayout.cols, colBinding{qual: ref.Qual, name: ref.Name})
		} else {
			p.groupLayout.cols = append(p.groupLayout.cols, colBinding{name: fmt.Sprintf("#g%d", i)})
		}
	}
	for i := range p.aggs {
		p.groupLayout.cols = append(p.groupLayout.cols, colBinding{name: fmt.Sprintf("#agg%d", i)})
	}
	return p, nil
}

// mergeable reports whether every aggregate in the plan supports
// partial-result merging — the precondition for parallel execution.
func (p *groupPlan) mergeable() bool {
	for _, ab := range p.aggs {
		if _, ok := ab.mk().(MergeableAggState); !ok {
			return false
		}
	}
	return true
}

type group struct {
	keys   relstore.Row
	states []AggState
}

// groupAcc is one accumulation of rows into insertion-ordered groups.
// The parallel executor runs one groupAcc per morsel and merges them
// in morsel order, which reproduces the serial first-seen group order
// and the serial per-group Add order exactly.
type groupAcc struct {
	p      *groupPlan
	groups map[string]*group
	order  []string
	// Per-row scratch, reused across add calls so the grouped hot path
	// allocates nothing per row once every group exists. single caches
	// the lone group of an ungrouped aggregate (no key evaluation, no
	// map lookup per row).
	single *group
	keyBuf relstore.Row
	keyEnc []byte
	argBuf []relstore.Value
}

func (p *groupPlan) newAcc() *groupAcc {
	return &groupAcc{p: p, groups: map[string]*group{}}
}

func (a *groupAcc) newGroup(keys relstore.Row) *group {
	g := &group{keys: keys, states: make([]AggState, len(a.p.aggs))}
	for i, ab := range a.p.aggs {
		g.states[i] = ab.mk()
	}
	return g
}

// add folds one input row into the accumulator.
func (a *groupAcc) add(r relstore.Row) error {
	var g *group
	if len(a.p.keyFns) == 0 {
		// Ungrouped aggregate: exactly one group, keyed "".
		if a.single == nil {
			if cached, ok := a.groups[""]; ok {
				a.single = cached
			} else {
				a.single = a.newGroup(relstore.Row{})
				a.groups[""] = a.single
				a.order = append(a.order, "")
			}
		}
		g = a.single
	} else {
		if a.keyBuf == nil {
			a.keyBuf = make(relstore.Row, len(a.p.keyFns))
		}
		for i, fn := range a.p.keyFns {
			v, err := fn(r)
			if err != nil {
				return err
			}
			a.keyBuf[i] = v
		}
		// Encode the key into a reused byte scratch; the map lookup via
		// string(keyEnc) does not allocate on a hit.
		a.keyEnc = appendKey(a.keyEnc[:0], a.keyBuf)
		var ok bool
		g, ok = a.groups[string(a.keyEnc)]
		if !ok {
			g = a.newGroup(a.keyBuf.Clone())
			k := string(a.keyEnc)
			a.groups[k] = g
			a.order = append(a.order, k)
		}
	}
	for i, ab := range a.p.aggs {
		if ab.call.Star {
			if err := g.states[i].Add(nil); err != nil {
				return err
			}
			continue
		}
		if cap(a.argBuf) < len(ab.args) {
			a.argBuf = make([]relstore.Value, len(ab.args))
		}
		argv := a.argBuf[:len(ab.args)]
		for j, fn := range ab.args {
			v, err := fn(r)
			if err != nil {
				return err
			}
			argv[j] = v
		}
		if err := g.states[i].Add(argv); err != nil {
			return err
		}
	}
	return nil
}

// merge folds b into a. b's groups are appended after a's in b's
// first-seen order, so merging per-morsel accumulators in morsel
// order preserves serial group order; b must not be used afterwards
// (its states are absorbed).
func (a *groupAcc) merge(b *groupAcc) error {
	for _, k := range b.order {
		bg := b.groups[k]
		ag, ok := a.groups[k]
		if !ok {
			a.groups[k] = bg
			a.order = append(a.order, k)
			continue
		}
		for i, st := range ag.states {
			m, ok := st.(MergeableAggState)
			if !ok {
				return fmt.Errorf("sql: aggregate %s cannot merge partial results", a.p.aggs[i].call.Name)
			}
			if err := m.Merge(bg.states[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// finalizeGroups renders accumulated groups through HAVING, the
// output expressions, ORDER BY and LIMIT.
func (en *Engine) finalizeGroups(p *groupPlan, acc *groupAcc, sp *obs.Span) (*Result, error) {
	ps := sp.Child("project")
	ps.SetAttr("grouped", "true")
	stmt := p.stmt
	groups, order := acc.groups, acc.order
	// Aggregate query with no GROUP BY over zero rows still yields one
	// group (COUNT(*) = 0).
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		g := &group{states: make([]AggState, len(p.aggs))}
		for i, ab := range p.aggs {
			g.states[i] = ab.mk()
		}
		groups[""] = g
		order = append(order, "")
	}

	// Rewrite output expressions against the group layout.
	rewrite := func(e Expr) Expr { return rewriteAggs(e, p.aggSlot, stmt.GroupBy, p.groupLayout) }

	var evals []evalFunc
	var cols []string
	for _, it := range stmt.Select {
		fn, err := en.compileExpr(rewrite(it.Expr), p.groupLayout)
		if err != nil {
			return nil, err
		}
		evals = append(evals, fn)
		cols = append(cols, selectItemName(it, len(cols)))
	}
	var havingFn evalFunc
	if stmt.Having != nil {
		var err error
		if havingFn, err = en.compileExpr(rewrite(stmt.Having), p.groupLayout); err != nil {
			return nil, err
		}
	}
	orderFns := make([]evalFunc, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		fn, err := en.compileExpr(rewrite(o.Expr), p.groupLayout)
		if err != nil {
			return nil, err
		}
		orderFns[i] = fn
	}

	type outRow struct {
		vals relstore.Row
		keys relstore.Row
	}
	var outs []outRow
	for _, k := range order {
		g := groups[k]
		groupRow := make(relstore.Row, len(p.groupLayout.cols))
		copy(groupRow, g.keys)
		for i, st := range g.states {
			groupRow[len(stmt.GroupBy)+i] = st.Result()
		}
		if havingFn != nil {
			v, err := havingFn(groupRow)
			if err != nil {
				return nil, err
			}
			if !v.AsBool() {
				continue
			}
		}
		vals := make(relstore.Row, len(evals))
		for i, fn := range evals {
			v, err := fn(groupRow)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		keys := make(relstore.Row, len(orderFns))
		for i, fn := range orderFns {
			v, err := fn(groupRow)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		outs = append(outs, outRow{vals, keys})
	}
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, o := range stmt.OrderBy {
				c := compareValues(outs[i].keys[k], outs[j].keys[k])
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	res := &Result{Columns: cols}
	for _, o := range outs {
		res.Rows = append(res.Rows, o.vals)
		if stmt.Limit >= 0 && len(res.Rows) >= stmt.Limit {
			break
		}
	}
	ps.AddRows(int64(len(order)), int64(len(res.Rows)))
	ps.End()
	return res, nil
}

func (en *Engine) projectGrouped(stmt *SelectStmt, rows []relstore.Row, layout *rowLayout, sp *obs.Span) (*Result, error) {
	p, err := en.compileGrouping(stmt, layout)
	if err != nil {
		return nil, err
	}
	as := sp.Child("aggregate")
	acc := p.newAcc()
	for _, r := range rows {
		if err := acc.add(r); err != nil {
			return nil, err
		}
	}
	as.AddRows(int64(len(rows)), int64(len(acc.order)))
	as.End()
	return en.finalizeGroups(p, acc, sp)
}

// rewriteAggs replaces aggregate calls with references to their slots
// and group-by expressions with references to their key columns.
func rewriteAggs(e Expr, aggSlot map[*FuncCall]int, groupBy []Expr, groupLayout *rowLayout) Expr {
	if e == nil {
		return nil
	}
	if fc, ok := e.(*FuncCall); ok {
		if slot, isAgg := aggSlot[fc]; isAgg {
			return &ColRef{Name: groupLayout.cols[slot].name, Qual: groupLayout.cols[slot].qual}
		}
	}
	// Group-by key match (structural for ColRefs).
	if ref, ok := e.(*ColRef); ok {
		for i, g := range groupBy {
			if gref, ok := g.(*ColRef); ok &&
				strings.EqualFold(gref.Name, ref.Name) &&
				(ref.Qual == "" || strings.EqualFold(gref.Qual, ref.Qual)) {
				return &ColRef{Qual: groupLayout.cols[i].qual, Name: groupLayout.cols[i].name}
			}
		}
		return ref
	}
	switch x := e.(type) {
	case *Literal:
		return x
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op,
			L: rewriteAggs(x.L, aggSlot, groupBy, groupLayout),
			R: rewriteAggs(x.R, aggSlot, groupBy, groupLayout)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: rewriteAggs(x.X, aggSlot, groupBy, groupLayout)}
	case *IsNullExpr:
		return &IsNullExpr{X: rewriteAggs(x.X, aggSlot, groupBy, groupLayout), Negate: x.Negate}
	case *InExpr:
		out := &InExpr{X: rewriteAggs(x.X, aggSlot, groupBy, groupLayout), Negate: x.Negate}
		for _, it := range x.List {
			out.List = append(out.List, rewriteAggs(it, aggSlot, groupBy, groupLayout))
		}
		return out
	case *BetweenExpr:
		return &BetweenExpr{
			X:  rewriteAggs(x.X, aggSlot, groupBy, groupLayout),
			Lo: rewriteAggs(x.Lo, aggSlot, groupBy, groupLayout),
			Hi: rewriteAggs(x.Hi, aggSlot, groupBy, groupLayout)}
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteAggs(a, aggSlot, groupBy, groupLayout))
		}
		return out
	case *XMLElementExpr:
		out := &XMLElementExpr{Tag: x.Tag}
		for _, a := range x.Attrs {
			out.Attrs = append(out.Attrs, XMLAttr{Expr: rewriteAggs(a.Expr, aggSlot, groupBy, groupLayout), Name: a.Name})
		}
		for _, c := range x.Children {
			out.Children = append(out.Children, rewriteAggs(c, aggSlot, groupBy, groupLayout))
		}
		return out
	case *XMLForestExpr:
		out := &XMLForestExpr{}
		for _, a := range x.Items {
			out.Items = append(out.Items, XMLAttr{Expr: rewriteAggs(a.Expr, aggSlot, groupBy, groupLayout), Name: a.Name})
		}
		return out
	case *CaseExpr:
		out := &CaseExpr{Else: rewriteAggs(x.Else, aggSlot, groupBy, groupLayout)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, CaseWhen{
				Cond:   rewriteAggs(w.Cond, aggSlot, groupBy, groupLayout),
				Result: rewriteAggs(w.Result, aggSlot, groupBy, groupLayout)})
		}
		return out
	}
	return e
}

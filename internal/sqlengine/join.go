package sqlengine

// Hash-join executors on the zero-copy path (DESIGN.md §8.2). The
// build side indexes borrowed inner rows by their appendKey encoding;
// probes encode outer keys into a reusable scratch buffer, so a probe
// allocates nothing for non-matching rows (map lookups keyed on
// string(scratch) do not copy the bytes) and materializes only the
// combined output row on a match. When the statement's first join has
// a morsel-eligible outer scan, the probe fans out across the scan
// worker pool (hashJoinFirst / probeMorsels).

import (
	"context"
	"sync"
	"sync/atomic"

	"archis/internal/obs"
	"archis/internal/relstore"
)

// joinTable is the build side of a hash join: bucket indexes keyed by
// the encoded join key. One string key is allocated per distinct key
// value; probing is allocation-free and, because the table is
// read-only after build, safe to share across probe workers.
type joinTable struct {
	idx     map[string]int
	buckets [][]relstore.Row
}

func buildJoinTable(inner []relstore.Row, joins []equiJoin) *joinTable {
	jt := &joinTable{idx: make(map[string]int, len(inner))}
	var enc []byte
	key := make([]relstore.Value, len(joins))
	for _, r := range inner {
		for i, j := range joins {
			key[i] = r[j.newPos]
		}
		enc = appendKey(enc[:0], key)
		if b, ok := jt.idx[string(enc)]; ok {
			jt.buckets[b] = append(jt.buckets[b], r)
		} else {
			jt.idx[string(enc)] = len(jt.buckets)
			jt.buckets = append(jt.buckets, []relstore.Row{r})
		}
	}
	return jt
}

// probeScratch holds one prober's reusable buffers; concurrent
// workers must each own their own.
type probeScratch struct {
	enc []byte
	key []relstore.Value
}

func newProbeScratch(joins []equiJoin) *probeScratch {
	return &probeScratch{key: make([]relstore.Value, len(joins))}
}

// probe appends the combined rows for one outer row to out. Rows with
// a NULL key component never match (SQL equality semantics); probed
// reports whether the row had a fully non-NULL key.
func (jt *joinTable) probe(o relstore.Row, joins []equiJoin, sc *probeScratch, out []relstore.Row) (res []relstore.Row, probed bool) {
	for i, j := range joins {
		sc.key[i] = o[j.boundPos]
		if sc.key[i].IsNull() {
			return out, false
		}
	}
	sc.enc = appendKey(sc.enc[:0], sc.key)
	b, ok := jt.idx[string(sc.enc)]
	if !ok {
		return out, true
	}
	for _, m := range jt.buckets[b] {
		combined := make(relstore.Row, 0, len(o)+len(m))
		combined = append(combined, o...)
		combined = append(combined, m...)
		out = append(out, combined)
	}
	return out, true
}

// setFoldEst annotates a join span with the planner's estimates.
func setFoldEst(sp *obs.Span, fp *foldPlan) {
	if sp == nil || fp == nil {
		return
	}
	sp.SetInt("est_outer", int64(fp.estOuter))
	sp.SetInt("est_inner", int64(fp.estInner))
	sp.SetInt("est_out", int64(fp.estOut))
}

// hashJoin folds source s into already-materialized outer rows,
// building on the inner side (the planner picks this variant when the
// inner input is the smaller estimate; hashJoinBuildOuter is its
// mirror).
func (en *Engine) hashJoin(ctx context.Context, outer []relstore.Row, s *source, joins []equiJoin, singles []Expr, sources []*source, fp *foldPlan, sp *obs.Span) ([]relstore.Row, error) {
	bs := sp.Child("join:hash-build")
	bs.SetAttr("table", s.alias)
	bs.SetAttr("side", "inner")
	setFoldEst(bs, fp)
	inner, err := en.scanOne(ctx, s, singles, sources)
	if err != nil {
		return nil, err
	}
	jt := buildJoinTable(inner, joins)
	bs.AddRows(int64(len(inner)), 0)
	bs.SetInt("buckets", int64(len(jt.buckets)))
	bs.End()
	ps := sp.Child("join:hash-probe")
	cc := newCancelProbe(ctx)
	sc := newProbeScratch(joins)
	var out []relstore.Row
	var probed int64
	for _, o := range outer {
		if cc.tick() {
			return nil, cc.err()
		}
		var ok bool
		out, ok = jt.probe(o, joins, sc, out)
		if ok {
			probed++
		}
	}
	en.DB.AddJoinRows(probed, int64(len(out)))
	ps.AddRows(probed, int64(len(out)))
	ps.End()
	return out, nil
}

// hashJoinFirst fuses the statement's initial table scan into the
// probe side of its first hash join: outer rows stream from the
// borrow scan straight into the probe with no intermediate []Row, and
// when the outer scan is morsel-eligible the probe fans out over the
// scan worker pool. Called when the fold is a build-on-inner hash
// join: planner-off, when the inner side has no index on the leading
// key; planner-on, when the cost model picked the inner build side.
func (en *Engine) hashJoinFirst(ctx context.Context, outer *source, conjuncts []Expr, s *source, joins []equiJoin, singles []Expr, sources []*source, fp *foldPlan, sp *obs.Span) ([]relstore.Row, error) {
	bs := sp.Child("join:hash-build")
	bs.SetAttr("table", s.alias)
	bs.SetAttr("side", "inner")
	setFoldEst(bs, fp)
	inner, err := en.scanOne(ctx, s, singles, sources)
	if err != nil {
		return nil, err
	}
	jt := buildJoinTable(inner, joins)
	bs.AddRows(int64(len(inner)), 0)
	bs.SetInt("buckets", int64(len(jt.buckets)))
	bs.End()
	plan, err := en.planScan(outer, conjuncts, sources)
	if err != nil {
		return nil, err
	}

	if workers := en.scanWorkers(); workers > 1 && plan.eqIndex == nil {
		if ms, ok := outer.morselSource(); ok {
			morsels, err := ms.ScanMorsels(plan.bounds)
			if err != nil {
				return nil, err
			}
			if len(morsels) > 1 {
				ps := sp.Child("join:hash-probe")
				ps.SetAttr("table", outer.alias)
				ps.SetInt("workers", int64(workers))
				ps.SetInt("morsels", int64(len(morsels)))
				out, err := en.probeMorsels(ctx, morsels, plan, jt, joins, workers, ps)
				ps.End()
				return out, err
			}
		}
	}

	ps := sp.Child("join:hash-probe")
	ps.SetAttr("table", outer.alias)
	sc := newProbeScratch(joins)
	var out []relstore.Row
	var probed int64
	err = en.runScanPlan(ctx, outer, plan, func(row relstore.Row) (bool, error) {
		var ok bool
		out, ok = jt.probe(row, joins, sc, out)
		if ok {
			probed++
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	en.DB.AddJoinRows(probed, int64(len(out)))
	ps.AddRows(probed, int64(len(out)))
	ps.End()
	return out, nil
}

// probeMorsels fans the probe scan across the worker pool. The build
// table is shared read-only; each worker owns its scratch and whole
// morsels, and per-morsel outputs concatenated in morsel order
// reproduce the serial output order exactly (the same argument as
// execSingleParallel).
func (en *Engine) probeMorsels(ctx context.Context, morsels []relstore.MorselFunc, plan *scanPlan, jt *joinTable, joins []equiJoin, workers int, sp *obs.Span) ([]relstore.Row, error) {
	outs := make([][]relstore.Row, len(morsels))
	errs := make([]error, len(morsels))
	var probed atomic.Int64
	var next atomic.Int64
	var failed atomic.Bool
	if workers > len(morsels) {
		workers = len(morsels)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker probe: the row counter is unsynchronized.
			cc := newCancelProbe(ctx)
			sc := newProbeScratch(joins)
			var n int64
			defer func() { probed.Add(n) }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(morsels) || failed.Load() {
					return
				}
				if cc.check() {
					errs[i] = cc.err()
					failed.Store(true)
					return
				}
				var rowErr error
				_, err := morsels[i](true, func(row relstore.Row) bool {
					if cc.tick() {
						rowErr = cc.err()
						return false
					}
					if plan.filter != nil {
						v, err := plan.filter(row)
						if err != nil {
							rowErr = err
							return false
						}
						if !v.AsBool() {
							return true
						}
					}
					var ok bool
					outs[i], ok = jt.probe(row, joins, sc, outs[i])
					if ok {
						n++
					}
					return true
				})
				if err == nil {
					err = rowErr
				}
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Report the earliest morsel's error, matching the serial scan.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]relstore.Row, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	en.DB.AddJoinRows(probed.Load(), int64(total))
	sp.AddRows(probed.Load(), int64(total))
	return out, nil
}

// hashJoinBuildOuter is hashJoin with the build side flipped: the
// planner picks it when the already-materialized outer input is the
// smaller estimate, so the hash table is built over the outer rows
// and the inner scan streams through it — fixing the old executor's
// fixed-build-side misplan (a 17-row outer no longer pays for hashing
// a million-row inner). Matching inner rows are bucketed per outer
// row and emitted outer-major afterwards, so the output order is
// byte-identical to the build-inner executor's.
func (en *Engine) hashJoinBuildOuter(ctx context.Context, outer []relstore.Row, s *source, joins []equiJoin, singles []Expr, sources []*source, fp *foldPlan, sp *obs.Span) ([]relstore.Row, error) {
	bs := sp.Child("join:hash-build")
	bs.SetAttr("table", s.alias)
	bs.SetAttr("side", "outer")
	setFoldEst(bs, fp)
	// Build: outer row positions keyed by encoded join key. Rows with
	// a NULL key component can never match, so they are left out.
	idx := make(map[string][]int, len(outer))
	var enc []byte
	key := make([]relstore.Value, len(joins))
	for i, o := range outer {
		null := false
		for k, j := range joins {
			key[k] = o[j.boundPos]
			if key[k].IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		enc = appendKey(enc[:0], key)
		idx[string(enc)] = append(idx[string(enc)], i)
	}
	bs.AddRows(int64(len(outer)), 0)
	bs.SetInt("buckets", int64(len(idx)))
	bs.End()

	plan, err := en.planScan(s, singles, sources)
	if err != nil {
		return nil, err
	}
	ps := sp.Child("join:hash-probe")
	ps.SetAttr("table", s.alias)
	// matches[i] collects the inner rows joining outer row i; inner
	// rows are borrowed, which is safe to retain for the statement.
	matches := make([][]relstore.Row, len(outer))
	var probed, combined int64
	err = en.runScanPlan(ctx, s, plan, func(row relstore.Row) (bool, error) {
		for k, j := range joins {
			key[k] = row[j.newPos]
			if key[k].IsNull() {
				return true, nil
			}
		}
		probed++
		enc = appendKey(enc[:0], key)
		for _, oi := range idx[string(enc)] {
			matches[oi] = append(matches[oi], row)
			combined++
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]relstore.Row, 0, combined)
	for i, o := range outer {
		for _, m := range matches[i] {
			c := make(relstore.Row, 0, len(o)+len(m))
			c = append(c, o...)
			c = append(c, m...)
			out = append(out, c)
		}
	}
	en.DB.AddJoinRows(probed, int64(len(out)))
	ps.AddRows(probed, int64(len(out)))
	ps.End()
	return out, nil
}

package sqlengine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// Context cancellation (DESIGN.md §15.1): a cancelled query must stop
// mid-scan promptly, release its pinned snapshot, and leave the
// engine fully reusable. Mutations are never interrupted mid-flight —
// only rejected when the context fired before they started.

// TestCancelMidJoinReturnsFast pins the served path's latency
// contract: cancelling a long-running query returns within 50ms of
// the cancel, orders of magnitude before the query would finish.
func TestCancelMidJoinReturnsFast(t *testing.T) {
	en, db := newParallelDB(t, 3000)
	base := db.Stats().PinnedReaders

	// Non-equi nested-loop join: 9M row pairs, far beyond 50ms.
	slow := `select count(*) from pt a, pt b where a.v + b.v = 123456789`
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := en.ExecCtx(ctx, slow)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if d := time.Since(start); d > 50*time.Millisecond {
			t.Errorf("cancelled query took %s to return, want <50ms", d)
		}
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Errorf("cancelled query returned %v, want a cancellation error", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancellation error does not wrap context.Canceled: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled query still running after 2s")
	}

	// The pinned snapshot must be released on the error path.
	if got := db.Stats().PinnedReaders; got != base {
		t.Errorf("pinned readers = %d after cancellation, want %d", got, base)
	}
}

// TestCancelParallelScanLeavesEngineReusable cancels a morsel-fanout
// scan mid-drain and checks the worker pool serves the next query
// normally. The cancel races the (fast) scan, so both outcomes are
// legal — what must hold either way: no stuck workers, no leaked
// snapshot pin, identical results on re-execution.
func TestCancelParallelScanLeavesEngineReusable(t *testing.T) {
	en, db := newParallelDB(t, 20000)
	en.Workers = 4
	base := db.Stats().PinnedReaders

	q := `select grp, sum(v), count(*) from pt group by grp order by grp`
	want := dump(en.MustExec(q))

	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i%4) * 100 * time.Microsecond)
			cancel()
		}()
		res, err := en.ExecCtx(ctx, q)
		if err != nil {
			if !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("run %d: unexpected error: %v", i, err)
			}
		} else if got := dump(res); got != want {
			t.Fatalf("run %d: completed result diverged", i)
		}
		cancel()
	}

	if got := db.Stats().PinnedReaders; got != base {
		t.Errorf("pinned readers = %d after cancelled runs, want %d", got, base)
	}
	// The pool must be fully reusable after every cancellation.
	if got := dump(en.MustExec(q)); got != want {
		t.Error("engine returned a different result after cancellations")
	}
}

// TestCancelledContextRejectsMutation: a context that fired before
// the statement starts rejects DML without applying anything; a
// running mutation is never cut short.
func TestCancelledContextRejectsMutation(t *testing.T) {
	en, _ := newParallelDB(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := en.ExecCtx(ctx, `insert into pt values (999999, 1, 'gx', 1)`); err == nil ||
		!strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("pre-cancelled context did not reject the insert: %v", err)
	}
	res := en.MustExec(`select count(*) from pt where id = 999999`)
	if res.Rows[0][0].I != 0 {
		t.Error("rejected insert still applied rows")
	}
	// A live context lets the same statement through.
	if _, err := en.ExecCtx(context.Background(), `insert into pt values (999999, 1, 'gx', 1)`); err != nil {
		t.Fatal(err)
	}
}

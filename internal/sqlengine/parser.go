package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is
// tolerated).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	// A statement may be wrapped in redundant parentheses —
	// `(select …)` — common in generated and copy-pasted SQL.
	wrapped := 0
	for p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		wrapped++
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	for ; wrapped > 0; wrapped-- {
		if !p.accept(")") {
			return nil, p.errorf("expected \")\" closing the parenthesized statement")
		}
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

// accept consumes the symbol if present.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("select"):
		return p.parseSelect()
	case p.isKeyword("insert"):
		return p.parseInsert()
	case p.isKeyword("update"):
		return p.parseUpdate()
	case p.isKeyword("delete"):
		return p.parseDelete()
	case p.isKeyword("create"):
		return p.parseCreate()
	case p.isKeyword("drop"):
		return p.parseDrop()
	case p.isKeyword("explain"):
		return p.parseExplain()
	}
	return nil, p.errorf("expected statement, got %q", p.peek().text)
}

func (p *parser) parseExplain() (*ExplainStmt, error) {
	if err := p.expectKeyword("explain"); err != nil {
		return nil, err
	}
	st := &ExplainStmt{}
	if p.isKeyword("analyze") {
		p.next()
		st.Analyze = true
	}
	if !p.isKeyword("select") {
		return nil, p.errorf("EXPLAIN supports SELECT statements, got %q", p.peek().text)
	}
	inner, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	st.Inner = inner
	return st, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("distinct") {
		stmt.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*` or `alias.*`
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	if p.peek().kind == tokIdent {
		s := p.save()
		qual := p.next().text
		if p.accept(".") && p.accept("*") {
			return SelectItem{Star: true, Qual: qual}, nil
		}
		p.restore(s)
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		name, err := p.parseNameOrString()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if p.peek().kind == tokIdent && !p.anyKeyword("from", "where", "group", "having", "order", "limit") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) anyKeyword(kws ...string) bool {
	for _, kw := range kws {
		if p.isKeyword(kw) {
			return true
		}
	}
	return false
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent && !p.anyKeyword("where", "group", "having", "order", "limit", "on", "set") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.accept("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("create"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("table"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		stmt := &CreateTableStmt{Name: name}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			// Swallow length parameters like VARCHAR(40).
			if p.accept("(") {
				for !p.accept(")") {
					if p.atEOF() {
						return nil, p.errorf("unterminated type parameters")
					}
					p.next()
				}
			}
			typ, err := relstore.ParseType(typName)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			stmt.Columns = append(stmt.Columns, relstore.Col(col, typ))
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.acceptKeyword("index"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		stmt := &CreateIndexStmt{Name: name, Table: table}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return stmt, nil
	}
	return nil, p.errorf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("drop"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("is") {
		neg := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Negate: neg}, nil
	}
	neg := false
	if p.isKeyword("not") {
		s := p.save()
		p.pos++
		if p.isKeyword("in") {
			neg = true
		} else {
			p.restore(s)
			return l, nil
		}
	}
	if p.acceptKeyword("in") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		in := &InExpr{X: l, Negate: neg}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.acceptKeyword("between") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Value: relstore.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Value: relstore.Int(n)}, nil
	case tokString:
		p.pos++
		return &Literal{Value: relstore.String_(t.text)}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			return nil, p.errorf("unexpected *")
		}
	case tokIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

func (p *parser) parseIdentExpr() (Expr, error) {
	name := p.next().text
	up := strings.ToUpper(name)

	// DATE 'yyyy-mm-dd' literal.
	if up == "DATE" && p.peek().kind == tokString {
		s := p.next().text
		d, err := temporal.ParseDate(s)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return &Literal{Value: relstore.DateV(d)}, nil
	}
	if up == "NULL" {
		return &Literal{Value: relstore.Null}, nil
	}
	if up == "TRUE" {
		return &Literal{Value: relstore.Bool(true)}, nil
	}
	if up == "FALSE" {
		return &Literal{Value: relstore.Bool(false)}, nil
	}
	if up == "CASE" {
		return p.parseCase()
	}
	if up == "XMLELEMENT" {
		return p.parseXMLElement()
	}
	if up == "XMLFOREST" {
		return p.parseXMLForest()
	}

	// Function call?
	if p.accept("(") {
		call := &FuncCall{Name: up}
		if p.accept("*") {
			call.Star = true
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if !p.accept(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		return call, nil
	}

	// Qualified column reference alias.col.
	if p.accept(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColRef{Qual: name, Name: col}, nil
	}
	return &ColRef{Name: name}, nil
}

func (p *parser) parseCase() (Expr, error) {
	out := &CaseExpr{}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(out.Whens) == 0 {
		return nil, p.errorf("CASE without WHEN")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseNameOrString accepts an identifier or a quoted name.
func (p *parser) parseNameOrString() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokString {
		p.pos++
		return t.text, nil
	}
	return "", p.errorf("expected name, got %q", t.text)
}

// parseXMLElement parses XMLELEMENT(NAME "tag", [XMLATTRIBUTES(...)],
// child, ...).
func (p *parser) parseXMLElement() (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("name"); err != nil {
		return nil, err
	}
	tag, err := p.parseNameOrString()
	if err != nil {
		return nil, err
	}
	out := &XMLElementExpr{Tag: tag}
	for p.accept(",") {
		if p.isKeyword("xmlattributes") {
			p.pos++
			attrs, err := p.parseXMLAttrList()
			if err != nil {
				return nil, err
			}
			out.Attrs = append(out.Attrs, attrs...)
			continue
		}
		child, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, child)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseXMLForest() (Expr, error) {
	items, err := p.parseXMLAttrList()
	if err != nil {
		return nil, err
	}
	return &XMLForestExpr{Items: items}, nil
}

// parseXMLAttrList parses ( expr AS name, ... ).
func (p *parser) parseXMLAttrList() ([]XMLAttr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []XMLAttr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		attr := XMLAttr{Expr: e}
		if p.acceptKeyword("as") {
			name, err := p.parseNameOrString()
			if err != nil {
				return nil, err
			}
			attr.Name = name
		} else if ref, ok := e.(*ColRef); ok {
			attr.Name = ref.Name
		} else {
			return nil, p.errorf("XMLATTRIBUTES item needs AS name")
		}
		out = append(out, attr)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

package sqlengine

import (
	"context"
	"sync"
	"sync/atomic"

	"archis/internal/obs"
	"archis/internal/relstore"
)

// Morsel-parallel single-table execution. A statement qualifies when:
//
//   - it reads exactly one source whose storage provides morsels,
//   - the planner found no equality-index probe (point lookups beat
//     parallel scans), and
//   - it is a pure scan+filter, or a scan+aggregate whose aggregates
//     all support partial-result merging (MergeableAggState).
//
// Workers pull morsels from a shared counter; per-morsel results are
// combined in morsel order, which reproduces the serial row order and
// serial group order exactly, so ORDER BY / DISTINCT / LIMIT /
// GROUP BY / HAVING all run unchanged on top and results are
// identical to Workers=1 (for float SUM/AVG, identical up to the
// addition reassociation noted on sumState.Merge).

// execSingleParallel attempts the parallel path for a single-source
// SELECT. handled=false means the caller should run the serial plan.
func (en *Engine) execSingleParallel(ctx context.Context, stmt *SelectStmt, s *source, conjuncts []Expr, sources []*source, sp *obs.Span) (*Result, bool, error) {
	workers := en.scanWorkers()
	if workers <= 1 {
		return nil, false, nil
	}
	ms, ok := s.morselSource()
	if !ok {
		return nil, false, nil
	}
	plan, err := en.planScan(s, conjuncts, sources)
	if err != nil {
		return nil, true, err
	}
	if plan.eqIndex != nil {
		return nil, false, nil
	}
	layout := layoutFor(s.alias, s.schema)

	var gplan *groupPlan
	if en.isGrouped(stmt) {
		gplan, err = en.compileGrouping(stmt, layout)
		if err != nil {
			return nil, true, err
		}
		if !gplan.mergeable() {
			return nil, false, nil
		}
	}

	morsels, err := ms.ScanMorsels(plan.bounds)
	if err != nil {
		return nil, true, err
	}

	fanout := sp.Child("morsel-fanout")
	fanout.SetAttr("table", s.alias)
	fanout.SetInt("morsels", int64(len(morsels)))
	if plan.est.Planned {
		fanout.SetAttr("access", plan.est.Access)
		fanout.SetInt("est_rows", int64(plan.est.OutRows))
	}

	// Per-morsel partials, merged in morsel order after the pool
	// drains. Each worker owns whole morsels, so no row-level
	// synchronization is needed; rows are borrowed (zero-copy) because
	// everything downstream treats them as read-only.
	accs := make([]*groupAcc, len(morsels))
	rowss := make([][]relstore.Row, len(morsels))
	errs := make([]error, len(morsels))
	var next atomic.Int64
	var failed atomic.Bool
	if workers > len(morsels) {
		workers = len(morsels)
	}
	fanout.SetInt("workers", int64(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One probe per worker: the row counter inside is
			// unsynchronized, so sharing one across workers would race.
			cc := newCancelProbe(ctx)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(morsels) || failed.Load() {
					return
				}
				if cc.check() {
					errs[i] = cc.err()
					failed.Store(true)
					return
				}
				if err := en.runMorsel(morsels[i], plan, gplan, cc, &accs[i], &rowss[i]); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	fanout.End()
	// Report the error of the earliest morsel, matching what a serial
	// scan would have hit first.
	for _, err := range errs {
		if err != nil {
			return nil, true, err
		}
	}

	if gplan != nil {
		mg := sp.Child("agg-merge")
		acc := gplan.newAcc()
		for _, a := range accs {
			if a == nil {
				continue
			}
			if err := acc.merge(a); err != nil {
				return nil, true, err
			}
		}
		mg.SetInt("partials", int64(len(accs)))
		mg.AddRows(0, int64(len(acc.order)))
		mg.End()
		res, err := en.finalizeGroups(gplan, acc, sp)
		return res, true, err
	}

	n := 0
	for _, rs := range rowss {
		n += len(rs)
	}
	fanout.AddRows(0, int64(n))
	rows := make([]relstore.Row, 0, n)
	for _, rs := range rowss {
		rows = append(rows, rs...)
	}
	res, err := en.project(stmt, rows, layout, sources, sp)
	return res, true, err
}

// runMorsel drains one morsel through the residual filter into either
// a fresh group accumulator (aggregate shape) or a row list (filter
// shape). cc is the calling worker's cancellation probe (nil when the
// query is uncancellable).
func (en *Engine) runMorsel(m relstore.MorselFunc, plan *scanPlan, gplan *groupPlan, cc *cancelProbe, acc **groupAcc, rows *[]relstore.Row) error {
	var a *groupAcc
	if gplan != nil {
		a = gplan.newAcc()
		*acc = a
	}
	var rowErr error
	_, err := m(true, func(row relstore.Row) bool {
		if cc.tick() {
			rowErr = cc.err()
			return false
		}
		if plan.filter != nil {
			v, err := plan.filter(row)
			if err != nil {
				rowErr = err
				return false
			}
			if !v.AsBool() {
				return true
			}
		}
		if a != nil {
			if err := a.add(row); err != nil {
				rowErr = err
				return false
			}
			return true
		}
		*rows = append(*rows, row)
		return true
	})
	if err == nil {
		err = rowErr
	}
	return err
}

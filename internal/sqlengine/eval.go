package sqlengine

import (
	"fmt"
	"strings"

	"archis/internal/relstore"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// colBinding describes one column of an executor row: which FROM alias
// it came from and its name/type.
type colBinding struct {
	qual string
	name string
	typ  relstore.Type
}

// rowLayout maps (qualifier, column) to positions in executor rows.
type rowLayout struct {
	cols []colBinding
}

func (l *rowLayout) resolve(qual, name string) (int, error) {
	found := -1
	for i, c := range l.cols {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(c.qual, qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("sql: unknown column %s", name)
	}
	return found, nil
}

// concat merges two layouts (for joins).
func (l *rowLayout) concat(r *rowLayout) *rowLayout {
	out := &rowLayout{cols: make([]colBinding, 0, len(l.cols)+len(r.cols))}
	out.cols = append(out.cols, l.cols...)
	out.cols = append(out.cols, r.cols...)
	return out
}

// evalFunc evaluates a compiled expression against one executor row.
type evalFunc func(row relstore.Row) (relstore.Value, error)

// forestTag is the synthetic element name wrapping an XML forest (the
// result of XMLAGG and XMLFOREST). Forests are spliced into parents
// and unwrapped at output time; the tag never reaches serialized XML.
const forestTag = "#forest"

func isForest(v relstore.Value) bool {
	return v.Kind == relstore.TypeXML && v.X != nil && v.X.Name == forestTag
}

// compileExpr builds an evaluator for e. Aggregate calls are not
// allowed here; grouping compiles them separately.
func (en *Engine) compileExpr(e Expr, layout *rowLayout) (evalFunc, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Value
		return func(relstore.Row) (relstore.Value, error) { return v, nil }, nil

	case *ColRef:
		pos, err := layout.resolve(x.Qual, x.Name)
		if err != nil {
			return nil, err
		}
		return func(row relstore.Row) (relstore.Value, error) { return row[pos], nil }, nil

	case *UnaryExpr:
		inner, err := en.compileExpr(x.X, layout)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(row relstore.Row) (relstore.Value, error) {
				v, err := inner(row)
				if err != nil {
					return relstore.Null, err
				}
				if v.IsNull() {
					return relstore.Null, nil
				}
				return relstore.Bool(!v.AsBool()), nil
			}, nil
		case "-":
			return func(row relstore.Row) (relstore.Value, error) {
				v, err := inner(row)
				if err != nil || v.IsNull() {
					return relstore.Null, err
				}
				if v.Kind == relstore.TypeFloat {
					return relstore.Float(-v.F), nil
				}
				n, ok := v.AsInt()
				if !ok {
					return relstore.Null, fmt.Errorf("sql: cannot negate %s", v.Kind)
				}
				return relstore.Int(-n), nil
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary op %s", x.Op)

	case *BinaryExpr:
		return en.compileBinary(x, layout)

	case *IsNullExpr:
		inner, err := en.compileExpr(x.X, layout)
		if err != nil {
			return nil, err
		}
		neg := x.Negate
		return func(row relstore.Row) (relstore.Value, error) {
			v, err := inner(row)
			if err != nil {
				return relstore.Null, err
			}
			return relstore.Bool(v.IsNull() != neg), nil
		}, nil

	case *InExpr:
		inner, err := en.compileExpr(x.X, layout)
		if err != nil {
			return nil, err
		}
		items := make([]evalFunc, len(x.List))
		for i, it := range x.List {
			if items[i], err = en.compileExpr(it, layout); err != nil {
				return nil, err
			}
		}
		neg := x.Negate
		return func(row relstore.Row) (relstore.Value, error) {
			v, err := inner(row)
			if err != nil {
				return relstore.Null, err
			}
			if v.IsNull() {
				return relstore.Null, nil
			}
			for _, item := range items {
				iv, err := item(row)
				if err != nil {
					return relstore.Null, err
				}
				if compareValues(v, iv) == 0 && !iv.IsNull() {
					return relstore.Bool(!neg), nil
				}
			}
			return relstore.Bool(neg), nil
		}, nil

	case *BetweenExpr:
		inner, err := en.compileExpr(x.X, layout)
		if err != nil {
			return nil, err
		}
		lo, err := en.compileExpr(x.Lo, layout)
		if err != nil {
			return nil, err
		}
		hi, err := en.compileExpr(x.Hi, layout)
		if err != nil {
			return nil, err
		}
		return func(row relstore.Row) (relstore.Value, error) {
			v, err := inner(row)
			if err != nil || v.IsNull() {
				return relstore.Null, err
			}
			lv, err := lo(row)
			if err != nil {
				return relstore.Null, err
			}
			hv, err := hi(row)
			if err != nil {
				return relstore.Null, err
			}
			return relstore.Bool(compareValues(v, lv) >= 0 && compareValues(v, hv) <= 0), nil
		}, nil

	case *FuncCall:
		fn, ok := en.scalarFuncs[x.Name]
		if !ok {
			if _, isAgg := en.aggFuncs[x.Name]; isAgg {
				return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
			}
			return nil, fmt.Errorf("sql: unknown function %s", x.Name)
		}
		args := make([]evalFunc, len(x.Args))
		var err error
		for i, a := range x.Args {
			if args[i], err = en.compileExpr(a, layout); err != nil {
				return nil, err
			}
		}
		return func(row relstore.Row) (relstore.Value, error) {
			vals := make([]relstore.Value, len(args))
			for i, a := range args {
				v, err := a(row)
				if err != nil {
					return relstore.Null, err
				}
				vals[i] = v
			}
			return fn(en, vals)
		}, nil

	case *XMLElementExpr:
		attrs := make([]evalFunc, len(x.Attrs))
		var err error
		for i, a := range x.Attrs {
			if attrs[i], err = en.compileExpr(a.Expr, layout); err != nil {
				return nil, err
			}
		}
		children := make([]evalFunc, len(x.Children))
		for i, c := range x.Children {
			if children[i], err = en.compileExpr(c, layout); err != nil {
				return nil, err
			}
		}
		tag := x.Tag
		attrNames := make([]string, len(x.Attrs))
		for i, a := range x.Attrs {
			attrNames[i] = a.Name
		}
		return func(row relstore.Row) (relstore.Value, error) {
			el := xmltree.NewElement(tag)
			for i, a := range attrs {
				v, err := a(row)
				if err != nil {
					return relstore.Null, err
				}
				if v.IsNull() {
					continue
				}
				el.SetAttr(attrNames[i], v.Text())
			}
			for _, c := range children {
				v, err := c(row)
				if err != nil {
					return relstore.Null, err
				}
				appendXMLChild(el, v)
			}
			return relstore.XML(el), nil
		}, nil

	case *XMLForestExpr:
		items := make([]evalFunc, len(x.Items))
		var err error
		for i, it := range x.Items {
			if items[i], err = en.compileExpr(it.Expr, layout); err != nil {
				return nil, err
			}
		}
		names := make([]string, len(x.Items))
		for i, it := range x.Items {
			names[i] = it.Name
		}
		return func(row relstore.Row) (relstore.Value, error) {
			forest := xmltree.NewElement(forestTag)
			for i, it := range items {
				v, err := it(row)
				if err != nil {
					return relstore.Null, err
				}
				if v.IsNull() {
					continue
				}
				el := xmltree.NewElement(names[i])
				appendXMLChild(el, v)
				forest.Append(el)
			}
			return relstore.XML(forest), nil
		}, nil

	case *CaseExpr:
		conds := make([]evalFunc, len(x.Whens))
		results := make([]evalFunc, len(x.Whens))
		var err error
		for i, w := range x.Whens {
			if conds[i], err = en.compileExpr(w.Cond, layout); err != nil {
				return nil, err
			}
			if results[i], err = en.compileExpr(w.Result, layout); err != nil {
				return nil, err
			}
		}
		var elseFn evalFunc
		if x.Else != nil {
			if elseFn, err = en.compileExpr(x.Else, layout); err != nil {
				return nil, err
			}
		}
		return func(row relstore.Row) (relstore.Value, error) {
			for i, c := range conds {
				v, err := c(row)
				if err != nil {
					return relstore.Null, err
				}
				if v.AsBool() {
					return results[i](row)
				}
			}
			if elseFn != nil {
				return elseFn(row)
			}
			return relstore.Null, nil
		}, nil
	}
	return nil, fmt.Errorf("sql: cannot compile %T", e)
}

func (en *Engine) compileBinary(x *BinaryExpr, layout *rowLayout) (evalFunc, error) {
	l, err := en.compileExpr(x.L, layout)
	if err != nil {
		return nil, err
	}
	r, err := en.compileExpr(x.R, layout)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND":
		return func(row relstore.Row) (relstore.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relstore.Null, err
			}
			if !lv.IsNull() && !lv.AsBool() {
				return relstore.Bool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return relstore.Null, err
			}
			if !rv.IsNull() && !rv.AsBool() {
				return relstore.Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return relstore.Null, nil
			}
			return relstore.Bool(true), nil
		}, nil
	case "OR":
		return func(row relstore.Row) (relstore.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relstore.Null, err
			}
			if !lv.IsNull() && lv.AsBool() {
				return relstore.Bool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return relstore.Null, err
			}
			if !rv.IsNull() && rv.AsBool() {
				return relstore.Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return relstore.Null, nil
			}
			return relstore.Bool(false), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(row relstore.Row) (relstore.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relstore.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return relstore.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return relstore.Null, nil
			}
			c := compareValues(lv, rv)
			var out bool
			switch op {
			case "=":
				out = c == 0
			case "!=":
				out = c != 0
			case "<":
				out = c < 0
			case "<=":
				out = c <= 0
			case ">":
				out = c > 0
			case ">=":
				out = c >= 0
			}
			return relstore.Bool(out), nil
		}, nil
	case "||":
		return func(row relstore.Row) (relstore.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relstore.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return relstore.Null, err
			}
			return relstore.String_(lv.Text() + rv.Text()), nil
		}, nil
	case "+", "-", "*", "/":
		return func(row relstore.Row) (relstore.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relstore.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return relstore.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return relstore.Null, nil
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown operator %s", op)
}

// arith performs numeric arithmetic with int/float promotion; DATE +
// INT adds days.
func arith(op string, a, b relstore.Value) (relstore.Value, error) {
	if a.Kind == relstore.TypeDate && b.Kind != relstore.TypeDate {
		n, ok := b.AsInt()
		if !ok {
			return relstore.Null, fmt.Errorf("sql: date arithmetic needs integer days")
		}
		switch op {
		case "+":
			return relstore.DateV(a.Date().AddDays(int(n))), nil
		case "-":
			return relstore.DateV(a.Date().AddDays(int(-n))), nil
		}
	}
	if a.Kind == relstore.TypeDate && b.Kind == relstore.TypeDate && op == "-" {
		return relstore.Int(int64(b.Date().DaysBetween(a.Date()))), nil
	}
	if a.Kind == relstore.TypeFloat || b.Kind == relstore.TypeFloat {
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if !aok || !bok {
			return relstore.Null, fmt.Errorf("sql: non-numeric operand for %s", op)
		}
		switch op {
		case "+":
			return relstore.Float(af + bf), nil
		case "-":
			return relstore.Float(af - bf), nil
		case "*":
			return relstore.Float(af * bf), nil
		case "/":
			if bf == 0 {
				return relstore.Null, fmt.Errorf("sql: division by zero")
			}
			return relstore.Float(af / bf), nil
		}
	}
	ai, aok := a.AsInt()
	bi, bok := b.AsInt()
	if !aok || !bok {
		return relstore.Null, fmt.Errorf("sql: non-numeric operand for %s", op)
	}
	switch op {
	case "+":
		return relstore.Int(ai + bi), nil
	case "-":
		return relstore.Int(ai - bi), nil
	case "*":
		return relstore.Int(ai * bi), nil
	case "/":
		if bi == 0 {
			return relstore.Null, fmt.Errorf("sql: division by zero")
		}
		return relstore.Int(ai / bi), nil
	}
	return relstore.Null, fmt.Errorf("sql: unknown arith op %s", op)
}

// compareValues extends relstore.Compare with DATE-vs-string coercion,
// so the paper's `m.tstart <= "1994-05-06"` comparisons work.
func compareValues(a, b relstore.Value) int {
	if a.Kind == relstore.TypeDate && b.Kind == relstore.TypeString {
		if d, err := temporal.ParseDate(strings.TrimSpace(b.S)); err == nil {
			return relstore.Compare(a, relstore.DateV(d))
		}
	}
	if a.Kind == relstore.TypeString && b.Kind == relstore.TypeDate {
		return -compareValues(b, a)
	}
	return relstore.Compare(a, b)
}

// appendXMLChild adds an evaluated child value to an element: XML
// nodes are appended (forests spliced), NULL skipped, scalars become
// text.
func appendXMLChild(el *xmltree.Node, v relstore.Value) {
	switch {
	case v.IsNull():
	case v.Kind == relstore.TypeXML && v.X != nil:
		if v.X.Name == forestTag {
			for _, c := range v.X.Children {
				el.Append(c.Clone())
			}
			return
		}
		el.Append(v.X.Clone())
	default:
		el.AppendText(v.Text())
	}
}

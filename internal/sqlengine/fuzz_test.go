package sqlengine

import (
	"testing"

	"archis/internal/relstore"
)

// FuzzParse checks the SQL parser never panics and that accepted
// SELECTs execute (or fail cleanly) against a small schema.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`select a from t where a = 1`,
		`select XMLElement(Name "x", XMLAttributes(a as "a"), b) from t`,
		`select count(*), avg(a) from t group by b having count(*) > 1 order by b desc limit 3`,
		`insert into t values (1, 'x', DATE '1995-01-01')`,
		`update t set a = a + 1 where b = 'y'`,
		`delete from t where a between 1 and 5`,
		`create table q (x INT, y VARCHAR(10))`,
		`select distinct a from t where a in (1, 2) and b is not null`,
		`select case when a = 1 then 'one' else 'other' end from t`,
		`select toverlaps(c, c, DATE '1990-01-01', DATE '1991-01-01') from t`,
		`select t1.a from t t1, t t2 where t1.a = t2.a`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			return // only SELECTs are executed; DML could mutate state
		}
		en := New(relstore.NewDatabase())
		en.MustExec(`create table t (a INT, b VARCHAR, c DATE)`)
		en.MustExec(`insert into t values (1, 'x', '1990-06-01'), (2, 'y', '1992-06-01')`)
		_, _ = en.ExecStmt(sel) // must not panic
	})
}

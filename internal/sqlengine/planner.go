package sqlengine

// Cost-based access-path and join planning (DESIGN.md §12). The
// planner is fed by cheap storage statistics — table row counts,
// per-index distinct-key counts from the B+tree, zone-map page-prune
// estimates — and decides three things the executor used to hard-code:
//
//   1. eq-index probe vs. (morsel-parallel) scan for each table
//      reference, by estimated rows touched;
//   2. the hash-join build side, as the smaller estimated input;
//   3. the fold order of multi-join chains, greedily by estimated
//      cardinality (equi-connected sources before Cartesian ones).
//
// Every decision is deterministic: estimates derive only from table
// state, ties break toward declaration/FROM order, and EXPLAIN renders
// plans from the same code paths the executor runs. Engine.Planner
// (default on) falls back to the legacy fixed heuristics when false,
// which is what the planner-on/off differential tests compare against.

import (
	"strings"

	"archis/internal/relstore"
)

// ScanEstimator is implemented by storage that can cheaply predict the
// footprint of a bounded scan. Base tables implement it natively
// (relstore zone maps); virtual tables opt in (segment and blockzip
// stores do). Sources without an estimator get defaultVirtualRows.
type ScanEstimator interface {
	EstimateScan(bounds []relstore.ZoneBound) relstore.ScanEstimate
}

// Cost-model constants. Units are "row visits": scanning one cached
// row costs rowCost, touching one page costs pageCost (decode +
// cache), and one index probe costs probeCost per fetched row (random
// page access beats sequential only at low selectivity).
const (
	rowCost   = 1
	pageCost  = 8
	probeCost = 4

	// defaultVirtualRows is the assumed size of a virtual table that
	// exposes no statistics.
	defaultVirtualRows = 1024

	// Default selectivities for conjuncts the statistics cannot
	// resolve: equality on an unindexed column, range predicates, and
	// opaque expressions.
	eqSelectivity     = 0.1
	rangeSelectivity  = 0.3
	opaqueSelectivity = 0.5

	// estCap keeps join cardinality products inside int range.
	estCap = 1 << 40
)

// planEstimate carries the planner's cardinality estimates for one
// table access; zero-valued (Planned=false) when the planner is off.
type planEstimate struct {
	Planned    bool
	Access     string // "scan" or "index"
	TableRows  int    // live rows in the source
	AccessRows int    // rows the chosen access path touches
	OutRows    int    // rows surviving all conjuncts (>= 1)
}

// sourceEstimate resolves scan statistics for a source.
func (en *Engine) sourceEstimate(s *source, bounds []relstore.ZoneBound) relstore.ScanEstimate {
	if s.base != nil {
		return s.base.EstimateScan(bounds)
	}
	if se, ok := s.virtual.(ScanEstimator); ok {
		return se.EstimateScan(bounds)
	}
	return relstore.ScanEstimate{
		Rows: defaultVirtualRows, Pages: 1,
		TotalRows: defaultVirtualRows, TotalPages: 1,
	}
}

// indexMatches estimates how many rows an equality probe on ix
// fetches: total rows over distinct keys, at least one.
func indexMatches(totalRows int, ix *relstore.Index) int {
	n := ix.Len()
	if n <= 0 || totalRows <= 0 {
		return 1
	}
	m := (totalRows + n - 1) / n
	if m < 1 {
		m = 1
	}
	return m
}

// indexDeclPos returns the declaration position of ix on t (used as
// the deterministic tie-break: first-declared wins).
func indexDeclPos(t *relstore.Table, ix *relstore.Index) int {
	for i, cand := range t.Indexes() {
		if cand == ix {
			return i
		}
	}
	return int(^uint(0) >> 1)
}

// eqCandidate is one `col = const` conjunct with a usable index.
type eqCandidate struct {
	col int
	val relstore.Value
	ix  *relstore.Index
}

// chooseAccess runs the single-table cost model: it compares the
// bounded scan against the most selective eq-index candidate and
// fills p.eqVal/p.eqIndex plus p.est. conjStats describes the
// recognized conjunct mix for the output-cardinality estimate.
func (en *Engine) chooseAccess(s *source, p *scanPlan, cands []eqCandidate, conj conjunctStats) {
	est := en.sourceEstimate(s, p.bounds)

	// Most selective candidate; ties break toward the first-declared
	// index (and then toward conjunct order, since the iteration is
	// stable).
	best := -1
	bestMatches := 0
	for i, c := range cands {
		m := indexMatches(est.TotalRows, c.ix)
		switch {
		case best < 0, m < bestMatches:
			best, bestMatches = i, m
		case m == bestMatches &&
			indexDeclPos(s.base, c.ix) < indexDeclPos(s.base, cands[best].ix):
			best, bestMatches = i, m
		}
	}

	scanCost := est.Pages*pageCost + est.Rows*rowCost
	access, accessRows := "scan", est.Rows
	if best >= 0 && bestMatches*probeCost < scanCost {
		access, accessRows = "index", bestMatches
		p.eqVal, p.eqIndex = cands[best].val, cands[best].ix
	}

	// Output cardinality: apply every conjunct's selectivity to the
	// pruned scan estimate, clamped to what the access path touches.
	sel := 1.0
	for _, c := range cands {
		sel *= 1.0 / float64(indexMatchesInv(est.TotalRows, c.ix))
	}
	for i := 0; i < conj.eqUnindexed; i++ {
		sel *= eqSelectivity
	}
	for i := 0; i < conj.ranges; i++ {
		sel *= rangeSelectivity
	}
	for i := 0; i < conj.opaque; i++ {
		sel *= opaqueSelectivity
	}
	out := int(float64(est.Rows) * sel)
	if out > accessRows {
		out = accessRows
	}
	if out < 1 {
		out = 1
	}
	p.est = planEstimate{
		Planned:    true,
		Access:     access,
		TableRows:  est.TotalRows,
		AccessRows: accessRows,
		OutRows:    out,
	}
}

// indexMatchesInv returns the denominator of an eq conjunct's
// selectivity through ix: the number of distinct keys (so selectivity
// is matches/total = 1/distinct), at least one.
func indexMatchesInv(totalRows int, ix *relstore.Index) int {
	n := ix.Len()
	if n <= 0 {
		return 1
	}
	return n
}

// conjunctStats counts the predicate shapes planScan recognized, for
// selectivity estimation.
type conjunctStats struct {
	eqUnindexed int // col = const without a usable index
	ranges      int // col <op> const range comparisons
	opaque      int // conjuncts the planner cannot see through
}

// ---- join planning ----

type joinStrategy uint8

const (
	// stratLegacy defers to the executor's pre-planner runtime
	// heuristics (planner off).
	stratLegacy joinStrategy = iota
	stratIndex
	stratHashBuildInner
	stratHashBuildOuter
	stratNested
)

// foldPlan is the planned strategy for folding one source into the
// accumulated join result.
type foldPlan struct {
	strategy joinStrategy
	index    *relstore.Index // stratIndex: the probe index
	estOuter int             // estimated rows entering the fold
	estInner int             // estimated rows of the folded source
	estOut   int             // estimated rows leaving the fold
}

// joinPlan is the planned multi-source execution: the fold order
// (indices into the FROM-order source list) and a strategy per fold.
type joinPlan struct {
	order    []int
	folds    []foldPlan
	estFirst int // estimated output rows of the driving scan
}

func capEst(v int64) int {
	if v > estCap {
		return estCap
	}
	if v < 1 {
		return 1
	}
	return int(v)
}

// planJoins orders the sources greedily by estimated cardinality —
// smallest filtered source first, then the smallest equi-connected
// source, Cartesian folds last — and picks a strategy per fold. All
// ties break toward FROM order, so the plan is deterministic.
func (en *Engine) planJoins(sources []*source, perAlias map[string][]Expr, multi []Expr) (*joinPlan, error) {
	n := len(sources)
	ests := make([]planEstimate, n)
	for i, s := range sources {
		p, err := en.planScan(s, perAlias[strings.ToLower(s.alias)], sources)
		if err != nil {
			return nil, err
		}
		ests[i] = p.est
	}

	// Equi-join connectivity between aliases, from the multi-alias
	// conjuncts.
	edges := make(map[string]map[string]bool)
	addEdge := func(a, b string) {
		if edges[a] == nil {
			edges[a] = map[string]bool{}
		}
		edges[a][b] = true
	}
	for _, c := range multi {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		la := singleAlias(b.L, sources)
		ra := singleAlias(b.R, sources)
		if la == "" || ra == "" || la == ra {
			continue
		}
		addEdge(la, ra)
		addEdge(ra, la)
	}

	// Greedy ordering.
	used := make([]bool, n)
	order := make([]int, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		if ests[i].OutRows < ests[start].OutRows {
			start = i
		}
	}
	order = append(order, start)
	used[start] = true
	bound := map[string]bool{strings.ToLower(sources[start].alias): true}
	connected := func(i int) bool {
		for a := range edges[strings.ToLower(sources[i].alias)] {
			if bound[a] {
				return true
			}
		}
		return false
	}
	for len(order) < n {
		best, bestConn := -1, false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			conn := connected(i)
			switch {
			case best < 0,
				conn && !bestConn,
				conn == bestConn && ests[i].OutRows < ests[best].OutRows:
				best, bestConn = i, conn
			}
		}
		order = append(order, best)
		used[best] = true
		bound[strings.ToLower(sources[best].alias)] = true
	}

	// Simulate the folds in the planned order to pick strategies.
	plan := &joinPlan{order: order, estFirst: ests[start].OutRows}
	first := sources[start]
	layout := layoutFor(first.alias, first.schema)
	joinedAliases := map[string]bool{strings.ToLower(first.alias): true}
	pending := multi
	estOuter := ests[start].OutRows
	for _, idx := range order[1:] {
		s := sources[idx]
		joins, rest := en.equiJoinConds(pending, layout, joinedAliases, s, sources)
		pending = rest
		estInner := ests[idx].OutRows
		fp := foldPlan{estOuter: estOuter, estInner: estInner}
		switch {
		case len(joins) == 0:
			fp.strategy = stratNested
			fp.estOut = capEst(int64(estOuter) * int64(estInner))
		default:
			// Join cardinality: outer x inner over the join key's
			// distinct count (inner index when available, a fixed
			// guess otherwise).
			distinct := estInner / 10
			var ix *relstore.Index
			if s.base != nil {
				ix = s.base.IndexOn(joins[0].newPos)
			}
			if ix != nil && ix.Len() > 0 {
				distinct = ix.Len()
			}
			if distinct < 1 {
				distinct = 1
			}
			fp.estOut = capEst(int64(estOuter) * int64(estInner) / int64(distinct))

			innerScan := ests[idx].AccessRows
			switch {
			case ix != nil && int64(estOuter)*probeCost < int64(innerScan)+int64(estOuter):
				// Index nested-loop beats building a hash table over
				// the inner side when the outer input is small.
				fp.strategy = stratIndex
				fp.index = ix
			case estInner <= estOuter:
				fp.strategy = stratHashBuildInner
			default:
				fp.strategy = stratHashBuildOuter
			}
		}
		plan.folds = append(plan.folds, fp)
		layout = layout.concat(layoutFor(s.alias, s.schema))
		joinedAliases[strings.ToLower(s.alias)] = true
		estOuter = fp.estOut
	}
	return plan, nil
}

// singleAlias resolves e to the one alias it references, or "".
func singleAlias(e Expr, sources []*source) string {
	out := map[string]bool{}
	if err := exprAliases(e, sources, out); err != nil || len(out) != 1 {
		return ""
	}
	for a := range out {
		return a
	}
	return ""
}

package sqlengine

import (
	"fmt"
	"testing"

	"archis/internal/relstore"
)

// TestAppendKeyCollisionRegression pins the composite-key encoding
// bug: the old terminator-based scheme encoded ("a\x00\x03b","c") and
// ("a","b\x00\x03c") to the same bytes (0x03 is the TypeString kind
// tag), which made hash joins and DISTINCT conflate distinct keys.
func TestAppendKeyCollisionRegression(t *testing.T) {
	pairs := [][2][]relstore.Value{
		{
			{relstore.String_("a\x00\x03b"), relstore.String_("c")},
			{relstore.String_("a"), relstore.String_("b\x00\x03c")},
		},
		{ // splitting across the separator position
			{relstore.String_("ab"), relstore.String_("c")},
			{relstore.String_("a"), relstore.String_("bc")},
		},
		{ // NULL vs empty string
			{relstore.Null, relstore.String_("x")},
			{relstore.String_(""), relstore.String_("x")},
		},
		{ // int 1 vs string "1"
			{relstore.Int(1)},
			{relstore.String_("1")},
		},
		{ // bytes vs string with identical payload
			{relstore.Bytes([]byte("ab"))},
			{relstore.String_("ab")},
		},
	}
	for i, p := range pairs {
		a := appendKey(nil, p[0])
		b := appendKey(nil, p[1])
		if string(a) == string(b) {
			t.Errorf("pair %d: distinct keys %v and %v encode identically (%x)", i, p[0], p[1], a)
		}
	}
	// And equal values must still encode equally (scratch reuse included).
	scratch := appendKey(nil, pairs[0][0])
	scratch = appendKey(scratch[:0], pairs[0][0])
	if string(scratch) != string(appendKey(nil, pairs[0][0])) {
		t.Error("scratch reuse changed the encoding")
	}
}

// TestHashJoinAdversarialKeys runs a two-column equi join whose key
// values are built to collide under the old encoding and checks the
// join returns exactly the true matches.
func TestHashJoinAdversarialKeys(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table l (a VARCHAR, b VARCHAR, tag INT)`)
	en.MustExec(`create table r (a VARCHAR, b VARCHAR, tag INT)`)
	// Two left rows whose (a,b) differ but old-encode identically, and
	// the matching right rows.
	rows := []struct {
		a, b string
		tag  int64
	}{
		{"a\x00\x03b", "c", 1},
		{"a", "b\x00\x03c", 2},
	}
	for _, r := range rows {
		if err := en.InsertRow("l", relstore.Row{relstore.String_(r.a), relstore.String_(r.b), relstore.Int(r.tag)}); err != nil {
			t.Fatal(err)
		}
		if err := en.InsertRow("r", relstore.Row{relstore.String_(r.a), relstore.String_(r.b), relstore.Int(r.tag + 10)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := en.Exec(`select l.tag, r.tag from l, r where l.a = r.a and l.b = r.b order by l.tag`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("join returned %d rows, want 2 (old encoding returns 4): %v", len(res.Rows), res.Rows)
	}
	for i, want := range []int64{11, 12} {
		if res.Rows[i][0].I != want-10 || res.Rows[i][1].I != want {
			t.Errorf("row %d: got (%d,%d), want (%d,%d)", i, res.Rows[i][0].I, res.Rows[i][1].I, want-10, want)
		}
	}
}

// TestDistinctAdversarialKeys is the same collision through the
// DISTINCT path: two distinct output rows must both survive.
func TestDistinctAdversarialKeys(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table d (a VARCHAR, b VARCHAR)`)
	for _, r := range [][2]string{{"a\x00\x03b", "c"}, {"a", "b\x00\x03c"}, {"a", "b\x00\x03c"}} {
		if err := en.InsertRow("d", relstore.Row{relstore.String_(r[0]), relstore.String_(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := en.Exec(`select distinct a, b from d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("DISTINCT kept %d rows, want 2: %v", len(res.Rows), res.Rows)
	}
}

// buildJoinDB returns an engine with two sealed multi-page tables
// shaped for a non-indexed hash join (no index on the join key of the
// inner side, so the fused hashJoinFirst path runs).
func buildJoinDB(t testing.TB, rows int) *Engine {
	t.Helper()
	en := New(relstore.NewDatabase())
	en.MustExec(`create table big (id INT, grp INT, val INT)`)
	en.MustExec(`create table small (grp INT, label VARCHAR)`)
	for i := 0; i < rows; i++ {
		if err := en.InsertRow("big", relstore.Row{
			relstore.Int(int64(i)), relstore.Int(int64(i % 17)), relstore.Int(int64(i * 3)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < 17; g++ {
		if err := en.InsertRow("small", relstore.Row{
			relstore.Int(int64(g)), relstore.String_(fmt.Sprintf("g%02d", g)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if tb, ok := en.DB.Table("big"); ok {
		tb.Flush()
	}
	if ts, ok := en.DB.Table("small"); ok {
		ts.Flush()
	}
	return en
}

// TestHashJoinParallelMatchesSerial checks the fused morsel-parallel
// probe returns byte-identical results (same rows, same order) as the
// serial executor, including join stats accounting.
func TestHashJoinParallelMatchesSerial(t *testing.T) {
	en := buildJoinDB(t, 4000)
	q := `select big.id, big.val, small.label from big, small where big.grp = small.grp and big.val >= 300 order by big.id`
	en.Workers = 1
	serial, err := en.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	en.DB.ResetStats()
	en.Workers = 4
	par, err := en.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("serial %d rows, parallel %d rows", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if compareValues(serial.Rows[i][j], par.Rows[i][j]) != 0 {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, serial.Rows[i][j], par.Rows[i][j])
			}
		}
	}
	st := en.DB.Stats()
	if st.JoinRowsBorrowed == 0 {
		t.Error("parallel join did not count borrowed probe rows")
	}
	if st.JoinRowsCopied != int64(len(par.Rows)) {
		t.Errorf("JoinRowsCopied=%d, want %d (one combined row per output row)", st.JoinRowsCopied, len(par.Rows))
	}
}

// TestHashJoinNullKeysNeverMatch pins SQL semantics on the new path:
// NULL join keys match nothing on either side.
func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table l (k INT, v INT)`)
	en.MustExec(`create table r (k INT, w INT)`)
	for _, row := range []relstore.Row{
		{relstore.Int(1), relstore.Int(10)},
		{relstore.Null, relstore.Int(20)},
	} {
		if err := en.InsertRow("l", row); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range []relstore.Row{
		{relstore.Int(1), relstore.Int(100)},
		{relstore.Null, relstore.Int(200)},
	} {
		if err := en.InsertRow("r", row); err != nil {
			t.Fatal(err)
		}
	}
	res, err := en.Exec(`select l.v, r.w from l, r where l.k = r.k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 || res.Rows[0][1].I != 100 {
		t.Fatalf("NULL keys leaked into the join: %v", res.Rows)
	}
}

func probeBenchTable() (*joinTable, []equiJoin) {
	inner := make([]relstore.Row, 64)
	joins := []equiJoin{{boundPos: 1, newPos: 0}}
	for i := range inner {
		inner[i] = relstore.Row{relstore.Int(int64(i)), relstore.String_("x")}
	}
	return buildJoinTable(inner, joins), joins
}

// BenchmarkHashJoinProbeMiss measures the pure probe path: every key
// misses, so the scratch-encoded lookup must be allocation-free
// (mirroring BenchmarkScanBorrow — expect 0 allocs/op).
func BenchmarkHashJoinProbeMiss(b *testing.B) {
	jt, joins := probeBenchTable()
	probeRows := make([]relstore.Row, 1024)
	for i := range probeRows {
		probeRows[i] = relstore.Row{relstore.Int(int64(i)), relstore.Int(int64(i%640) + 1000)}
	}
	sc := newProbeScratch(joins)
	out := make([]relstore.Row, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, r := range probeRows {
			out, _ = jt.probe(r, joins, sc, out)
		}
	}
}

// BenchmarkHashJoinProbeMixed has one key in eight match: the only
// allocations are the materialized combined output rows.
func BenchmarkHashJoinProbeMixed(b *testing.B) {
	jt, joins := probeBenchTable()
	probeRows := make([]relstore.Row, 1024)
	for i := range probeRows {
		probeRows[i] = relstore.Row{relstore.Int(int64(i)), relstore.Int(int64(i % 512))}
	}
	sc := newProbeScratch(joins)
	out := make([]relstore.Row, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, r := range probeRows {
			out, _ = jt.probe(r, joins, sc, out)
		}
	}
}

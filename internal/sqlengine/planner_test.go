package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"archis/internal/relstore"
)

// insertBatched issues multi-row INSERTs so large test tables do not
// pay per-row parse overhead.
func insertBatched(en *Engine, table string, rows []string) {
	const batch = 200
	for i := 0; i < len(rows); i += batch {
		j := i + batch
		if j > len(rows) {
			j = len(rows)
		}
		en.MustExec("insert into " + table + " values " + strings.Join(rows[i:j], ","))
	}
}

func explainText(t *testing.T, en *Engine, sql string) string {
	t.Helper()
	res, err := en.Exec("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].Text())
		b.WriteByte('\n')
	}
	return b.String()
}

// newSelectivityDB builds a table where index quality varies per
// column: a has 2 distinct values, b has 100, c and d both have 50.
// Index declaration order is a, b, c, d.
func newSelectivityDB(t *testing.T) *Engine {
	t.Helper()
	en := New(relstore.NewDatabase())
	en.MustExec(`create table t (a INT, b INT, c INT, d INT, v INT)`)
	en.MustExec(`create index ix_a on t (a)`)
	en.MustExec(`create index ix_b on t (b)`)
	en.MustExec(`create index ix_c on t (c)`)
	en.MustExec(`create index ix_d on t (d)`)
	rows := make([]string, 400)
	for i := range rows {
		rows[i] = fmt.Sprintf("(%d, %d, %d, %d, %d)", i%2, i%100, i%50, i%50, i)
	}
	insertBatched(en, "t", rows)
	return en
}

// TestPlannerPicksMostSelectiveIndex pins the multi-index regression:
// with eq conjuncts on both a (2 distinct keys) and b (100 distinct
// keys), the legacy planner took whichever indexed conjunct came
// first in the WHERE clause; the cost-based planner must take the
// most selective index regardless of conjunct order.
func TestPlannerPicksMostSelectiveIndex(t *testing.T) {
	en := newSelectivityDB(t)
	const q = `select v from t where a = 1 and b = 7`

	plan := explainText(t, en, q)
	if !strings.Contains(plan, "(index ix_b)") {
		t.Errorf("planner did not pick the most selective index:\n%s", plan)
	}

	// Legacy behavior (first indexed conjunct wins) is preserved with
	// the planner off — that misplan is exactly what the cost model
	// fixes.
	en.Planner = false
	legacy := explainText(t, en, q)
	if !strings.Contains(legacy, "(index ix_a)") {
		t.Errorf("legacy plan drifted (want first-conjunct index ix_a):\n%s", legacy)
	}

	// Both plans must agree on the answer.
	en.Planner = true
	want := queryStrings(t, en, q+` order by v`)
	en.Planner = false
	got := queryStrings(t, en, q+` order by v`)
	if strings.Join(want, ";") != strings.Join(got, ";") {
		t.Errorf("planner on/off answers differ: %v vs %v", want, got)
	}
	if len(want) != 4 {
		t.Errorf("query returned %d rows, want 4", len(want))
	}
}

// TestPlannerIndexTieBreak: c and d are equally selective (50 distinct
// keys each). The tie must go to the first-declared index (ix_c) even
// when the conjunct on d comes first, so plans are deterministic.
func TestPlannerIndexTieBreak(t *testing.T) {
	en := newSelectivityDB(t)
	plan := explainText(t, en, `select v from t where d = 3 and c = 3`)
	if !strings.Contains(plan, "(index ix_c)") {
		t.Errorf("tie did not break to first-declared index:\n%s", plan)
	}
}

// TestPlannerPrefersScanOnPermissiveFilter: an eq predicate matching
// ~50% of rows must run as a scan under the cost model; the legacy
// planner always probed the index.
func TestPlannerPrefersScanOnPermissiveFilter(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table perm (flag INT, v INT)`)
	en.MustExec(`create index ix_flag on perm (flag)`)
	rows := make([]string, 1000)
	for i := range rows {
		rows[i] = fmt.Sprintf("(%d, %d)", i%2, i)
	}
	insertBatched(en, "perm", rows)

	const q = `select count(*) from perm where flag = 1`
	plan := explainText(t, en, q)
	if strings.Contains(plan, "index scan") {
		t.Errorf("planner chose an index probe for a 50%%-selective predicate:\n%s", plan)
	}
	en.Planner = false
	legacy := explainText(t, en, q)
	if !strings.Contains(legacy, "index scan") {
		t.Errorf("legacy plan drifted (want forced index probe):\n%s", legacy)
	}
	en.Planner = true
	if got := queryStrings(t, en, q); len(got) != 1 || got[0] != "500" {
		t.Errorf("count = %v, want 500", got)
	}
	en.Planner = false
	if got := queryStrings(t, en, q); len(got) != 1 || got[0] != "500" {
		t.Errorf("legacy count = %v, want 500", got)
	}
}

// TestIndexProbeBorrowsRows asserts the index-probe path reads rows
// zero-copy: allocations per query must not scale with the number of
// probed rows (the old path copied every fetched row).
func TestIndexProbeBorrowsRows(t *testing.T) {
	build := func(dups int) *Engine {
		en := New(relstore.NewDatabase())
		en.MustExec(`create table t (id INT, v INT)`)
		en.MustExec(`create index ix_id on t (id)`)
		rows := make([]string, 0, 64*dups)
		for id := 0; id < 64; id++ {
			for d := 0; d < dups; d++ {
				rows = append(rows, fmt.Sprintf("(%d, %d)", id, d))
			}
		}
		insertBatched(en, "t", rows)
		return en
	}
	allocsAt := func(dups int) float64 {
		en := build(dups)
		const q = `select count(*) from t where id = 7`
		if plan := explainText(t, en, q); !strings.Contains(plan, "index scan") {
			t.Fatalf("expected an index probe at %d dups:\n%s", dups, plan)
		}
		if got := queryStrings(t, en, q); got[0] != fmt.Sprint(dups) {
			t.Fatalf("count = %v, want %d", got, dups)
		}
		return testing.AllocsPerRun(20, func() { en.MustExec(q) })
	}
	small := allocsAt(8)
	large := allocsAt(256)
	// 248 extra matched rows; the copying path cost >= 1 alloc per row.
	if large-small > 64 {
		t.Errorf("index probe allocates per row: %.0f allocs at 8 dups, %.0f at 256", small, large)
	}
}

// newJoinDB builds tables of known sizes for build-side and strategy
// tests: jsmall (4 rows), jmed (600 rows, unindexed), jbig (1000 rows,
// index on the join key).
func newJoinDB(t *testing.T) *Engine {
	t.Helper()
	en := New(relstore.NewDatabase())
	en.MustExec(`create table jsmall (k INT, x INT)`)
	en.MustExec(`create table jmed (k INT, y INT)`)
	en.MustExec(`create table jbig (k INT, z INT)`)
	en.MustExec(`create index ix_jbig_k on jbig (k)`)
	small := make([]string, 4)
	for i := range small {
		small[i] = fmt.Sprintf("(%d, %d)", i, i*10)
	}
	med := make([]string, 600)
	for i := range med {
		med[i] = fmt.Sprintf("(%d, %d)", i%8, i)
	}
	big := make([]string, 1000)
	for i := range big {
		big[i] = fmt.Sprintf("(%d, %d)", i%16, i)
	}
	insertBatched(en, "jsmall", small)
	insertBatched(en, "jmed", med)
	insertBatched(en, "jbig", big)
	return en
}

// TestPlannerBuildSide: the hash-join build side must be the smaller
// estimated input regardless of FROM order, and both FROM orders must
// produce the same plan and the same answer.
func TestPlannerBuildSide(t *testing.T) {
	en := newJoinDB(t)
	qa := `select count(*) from jmed m, jsmall s where m.k = s.k`
	qb := `select count(*) from jsmall s, jmed m where m.k = s.k`

	pa, pb := explainText(t, en, qa), explainText(t, en, qb)
	if pa != pb {
		t.Errorf("FROM order changed the plan:\n--- m,s ---\n%s--- s,m ---\n%s", pa, pb)
	}
	if !strings.Contains(pa, "build=outer") {
		t.Errorf("join did not build on the smaller (outer) side:\n%s", pa)
	}
	if !strings.Contains(pa, "scan s (table)") {
		t.Errorf("join was not driven from the smaller source:\n%s", pa)
	}

	want := queryStrings(t, en, qa)
	if got := queryStrings(t, en, qb); got[0] != want[0] {
		t.Errorf("FROM order changed the answer: %v vs %v", want, got)
	}
	en.Planner = false
	if got := queryStrings(t, en, qa); got[0] != want[0] {
		t.Errorf("planner on/off answers differ: %v vs %v", want, got)
	}
}

// TestPlannerIndexJoin: a tiny outer input probing a large indexed
// inner must plan an index join, not a hash join.
func TestPlannerIndexJoin(t *testing.T) {
	en := newJoinDB(t)
	q := `select count(*) from jsmall s, jbig b where s.k = b.k`
	plan := explainText(t, en, q)
	if !strings.Contains(plan, "index join b") || !strings.Contains(plan, "(index ix_jbig_k)") {
		t.Errorf("want an index join through ix_jbig_k:\n%s", plan)
	}
	want := queryStrings(t, en, q)
	en.Planner = false
	if got := queryStrings(t, en, q); got[0] != want[0] {
		t.Errorf("planner on/off answers differ: %v vs %v", want, got)
	}
}

// TestPlannerFusedBuildInner: equal-sized inputs tie toward FROM
// order, the inner side is built, and the driving scan streams into
// the probe (the fused first fold).
func TestPlannerFusedBuildInner(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table jx (k INT, x INT)`)
	en.MustExec(`create table jy (k INT, y INT)`)
	rows := make([]string, 200)
	for i := range rows {
		rows[i] = fmt.Sprintf("(%d, %d)", i%10, i)
	}
	insertBatched(en, "jx", rows)
	insertBatched(en, "jy", rows)
	plan := explainText(t, en, `select count(*) from jx x, jy y where x.k = y.k`)
	if !strings.Contains(plan, "build=y") || !strings.Contains(plan, "probe:") {
		t.Errorf("equal inputs should fuse with build on the inner side:\n%s", plan)
	}
}

// TestPlannerDifferentialRandomized runs seeded random queries over
// three tables with planner on and off and requires identical
// answers. Queries carrying an ORDER BY over every projected column
// must match byte for byte; the rest as multisets.
func TestPlannerDifferentialRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	build := func() *Engine {
		rr := rand.New(rand.NewSource(7))
		en := New(relstore.NewDatabase())
		en.MustExec(`create table p1 (k INT, a INT, s VARCHAR)`)
		en.MustExec(`create table p2 (k INT, b INT)`)
		en.MustExec(`create table p3 (k INT, c INT)`)
		en.MustExec(`create index ix_p1_k on p1 (k)`)
		en.MustExec(`create index ix_p2_k on p2 (k)`)
		var rows []string
		for i := 0; i < 60; i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d, 's%d')", rr.Intn(20), rr.Intn(10), rr.Intn(5)))
		}
		insertBatched(en, "p1", rows)
		rows = rows[:0]
		for i := 0; i < 45; i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d)", rr.Intn(20), rr.Intn(12)))
		}
		insertBatched(en, "p2", rows)
		rows = rows[:0]
		for i := 0; i < 30; i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d)", rr.Intn(20), rr.Intn(6)))
		}
		insertBatched(en, "p3", rows)
		return en
	}
	on := build()
	off := build()
	off.Planner = false

	type tbl struct {
		name  string
		alias string
		cols  []string
	}
	all := []tbl{
		{"p1", "x", []string{"k", "a", "s"}},
		{"p2", "y", []string{"k", "b"}},
		{"p3", "z", []string{"k", "c"}},
	}
	ops := []string{"=", ">", "<", ">=", "<="}

	for qi := 0; qi < 80; qi++ {
		n := 1 + r.Intn(3)
		perm := r.Perm(3)[:n]
		sort.Ints(perm) // stable FROM order per pick
		tabs := make([]tbl, n)
		for i, p := range perm {
			tabs[i] = all[p]
		}

		var from, conds, cols []string
		for _, tb := range tabs {
			from = append(from, tb.name+" "+tb.alias)
			for _, col := range tb.cols {
				if col != "s" {
					cols = append(cols, tb.alias+"."+col)
				}
			}
		}
		for i := 1; i < n; i++ {
			if r.Intn(10) < 9 {
				conds = append(conds, fmt.Sprintf("%s.k = %s.k", tabs[i-1].alias, tabs[i].alias))
			}
		}
		for _, tb := range tabs {
			if r.Intn(2) == 0 {
				col := tb.cols[r.Intn(len(tb.cols))]
				if col == "s" {
					conds = append(conds, fmt.Sprintf("%s.s = 's%d'", tb.alias, r.Intn(5)))
				} else {
					conds = append(conds, fmt.Sprintf("%s.%s %s %d",
						tb.alias, col, ops[r.Intn(len(ops))], r.Intn(20)))
				}
			}
		}

		counting := r.Intn(3) == 0
		sel := strings.Join(cols, ", ")
		if counting {
			sel = "count(*)"
		}
		q := "select " + sel + " from " + strings.Join(from, ", ")
		if len(conds) > 0 {
			q += " where " + strings.Join(conds, " and ")
		}
		ordered := !counting && r.Intn(2) == 0
		if ordered {
			q += " order by " + strings.Join(cols, ", ")
		}

		got := queryStrings(t, on, q)
		want := queryStrings(t, off, q)
		if !ordered {
			sort.Strings(got)
			sort.Strings(want)
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("query %d: planner on/off answers differ\n  sql: %s\n  on:  %v\n  off: %v",
				qi, q, got, want)
		}
	}
}

package sqlengine

import (
	"fmt"
	"strings"

	"archis/internal/relstore"
	"archis/internal/temporal"
	"archis/internal/xmltree"
)

// ScalarFunc is a scalar SQL function. Names are registered uppercase.
type ScalarFunc func(en *Engine, args []relstore.Value) (relstore.Value, error)

// AggFunc creates fresh accumulator state for one group.
type AggFunc func() AggState

// AggState accumulates one group's rows for an aggregate call. The
// args slice passed to Add is a scratch buffer the executor reuses
// between rows: implementations may keep individual Values but must
// not retain the slice itself.
type AggState interface {
	Add(args []relstore.Value) error
	Result() relstore.Value
}

// MergeableAggState is implemented by aggregate states whose partial
// results over disjoint row subsets can be combined — the
// precondition for morsel-parallel aggregation. Merge(other) must
// behave as if other's rows had been Added after this state's rows;
// the parallel executor merges per-morsel partials in morsel (scan)
// order, so order-sensitive states stay deterministic. other is
// always a state created by the same AggFunc; it must not be used
// after being merged.
type MergeableAggState interface {
	AggState
	Merge(other AggState) error
}

func mergeTypeError(name string, other AggState) error {
	return fmt.Errorf("sql: %s: cannot merge partial of type %T", name, other)
}

// RegisterScalar adds (or replaces) a scalar function.
func (en *Engine) RegisterScalar(name string, fn ScalarFunc) {
	en.scalarFuncs[strings.ToUpper(name)] = fn
}

// RegisterAggregate adds (or replaces) an aggregate function.
func (en *Engine) RegisterAggregate(name string, fn AggFunc) {
	en.aggFuncs[strings.ToUpper(name)] = fn
}

func wantArgs(name string, args []relstore.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("sql: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

func argDate(name string, v relstore.Value) (temporal.Date, error) {
	switch v.Kind {
	case relstore.TypeDate:
		return v.Date(), nil
	case relstore.TypeString:
		d, err := temporal.ParseDate(strings.TrimSpace(v.S))
		if err != nil {
			return 0, fmt.Errorf("sql: %s: %w", name, err)
		}
		return d, nil
	case relstore.TypeInt:
		return temporal.Date(v.I), nil
	}
	return 0, fmt.Errorf("sql: %s: cannot use %s as date", name, v.Kind)
}

func argInterval(name string, ts, te relstore.Value) (temporal.Interval, error) {
	s, err := argDate(name, ts)
	if err != nil {
		return temporal.Interval{}, err
	}
	e, err := argDate(name, te)
	if err != nil {
		return temporal.Interval{}, err
	}
	return temporal.NewInterval(s, e)
}

// intervalPredicate registers a 4-argument (ts1,te1,ts2,te2) temporal
// predicate — the SQL side of the paper's XQuery interval functions.
func intervalPredicate(name string, pred func(a, b temporal.Interval) bool) ScalarFunc {
	return func(_ *Engine, args []relstore.Value) (relstore.Value, error) {
		if err := wantArgs(name, args, 4); err != nil {
			return relstore.Null, err
		}
		for _, a := range args {
			if a.IsNull() {
				return relstore.Null, nil
			}
		}
		a, err := argInterval(name, args[0], args[1])
		if err != nil {
			return relstore.Null, err
		}
		b, err := argInterval(name, args[2], args[3])
		if err != nil {
			return relstore.Null, err
		}
		return relstore.Bool(pred(a, b)), nil
	}
}

func (en *Engine) registerBuiltins() {
	// --- general scalar functions ---
	en.RegisterScalar("UPPER", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("UPPER", a, 1); err != nil {
			return relstore.Null, err
		}
		return relstore.String_(strings.ToUpper(a[0].Text())), nil
	})
	en.RegisterScalar("LOWER", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("LOWER", a, 1); err != nil {
			return relstore.Null, err
		}
		return relstore.String_(strings.ToLower(a[0].Text())), nil
	})
	en.RegisterScalar("LENGTH", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("LENGTH", a, 1); err != nil {
			return relstore.Null, err
		}
		return relstore.Int(int64(len(a[0].Text()))), nil
	})
	en.RegisterScalar("ABS", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("ABS", a, 1); err != nil {
			return relstore.Null, err
		}
		if a[0].Kind == relstore.TypeFloat {
			f := a[0].F
			if f < 0 {
				f = -f
			}
			return relstore.Float(f), nil
		}
		n, ok := a[0].AsInt()
		if !ok {
			return relstore.Null, fmt.Errorf("sql: ABS of non-number")
		}
		if n < 0 {
			n = -n
		}
		return relstore.Int(n), nil
	})
	en.RegisterScalar("COALESCE", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return relstore.Null, nil
	})
	en.RegisterScalar("CONCAT", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		var sb strings.Builder
		for _, v := range a {
			sb.WriteString(v.Text())
		}
		return relstore.String_(sb.String()), nil
	})
	en.RegisterScalar("DATE", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("DATE", a, 1); err != nil {
			return relstore.Null, err
		}
		d, err := argDate("DATE", a[0])
		if err != nil {
			return relstore.Null, err
		}
		return relstore.DateV(d), nil
	})
	en.RegisterScalar("YEAR", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("YEAR", a, 1); err != nil {
			return relstore.Null, err
		}
		d, err := argDate("YEAR", a[0])
		if err != nil {
			return relstore.Null, err
		}
		return relstore.Int(int64(d.Year())), nil
	})
	en.RegisterScalar("CURRENT_DATE", func(e *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("CURRENT_DATE", a, 0); err != nil {
			return relstore.Null, err
		}
		return relstore.DateV(e.Now()), nil
	})

	// --- temporal predicates (paper Section 5.4) ---
	en.RegisterScalar("TOVERLAPS", intervalPredicate("TOVERLAPS", temporal.Interval.Overlaps))
	en.RegisterScalar("TCONTAINS", intervalPredicate("TCONTAINS", temporal.Interval.ContainsInterval))
	en.RegisterScalar("TEQUALS", intervalPredicate("TEQUALS", temporal.Interval.Equals))
	en.RegisterScalar("TMEETS", intervalPredicate("TMEETS", temporal.Interval.Meets))
	en.RegisterScalar("TPRECEDES", intervalPredicate("TPRECEDES", temporal.Interval.Precedes))

	// OVERLAPINTERVAL(ts1,te1,ts2,te2) returns <interval tstart tend/>
	// or NULL when disjoint.
	en.RegisterScalar("OVERLAPINTERVAL", func(_ *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("OVERLAPINTERVAL", a, 4); err != nil {
			return relstore.Null, err
		}
		x, err := argInterval("OVERLAPINTERVAL", a[0], a[1])
		if err != nil {
			return relstore.Null, err
		}
		y, err := argInterval("OVERLAPINTERVAL", a[2], a[3])
		if err != nil {
			return relstore.Null, err
		}
		iv, ok := x.Intersect(y)
		if !ok {
			return relstore.Null, nil
		}
		el := xmltree.NewElement("interval").
			SetAttr("tstart", iv.Start.String()).
			SetAttr("tend", iv.End.String())
		return relstore.XML(el), nil
	})

	// TSPAN(ts, te) → days, clamping "now" to the engine clock.
	en.RegisterScalar("TSPAN", func(e *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("TSPAN", a, 2); err != nil {
			return relstore.Null, err
		}
		iv, err := argInterval("TSPAN", a[0], a[1])
		if err != nil {
			return relstore.Null, err
		}
		return relstore.Int(int64(iv.Days(e.Now()))), nil
	})

	// RTEND(te) → te, with the internal end-of-time replaced by
	// CURRENT_DATE (paper Section 4.3).
	en.RegisterScalar("RTEND", func(e *Engine, a []relstore.Value) (relstore.Value, error) {
		if err := wantArgs("RTEND", a, 1); err != nil {
			return relstore.Null, err
		}
		d, err := argDate("RTEND", a[0])
		if err != nil {
			return relstore.Null, err
		}
		if d.IsForever() {
			d = e.Now()
		}
		return relstore.DateV(d), nil
	})

	// --- standard aggregates ---
	en.RegisterAggregate("COUNT", func() AggState { return &countState{} })
	en.RegisterAggregate("SUM", func() AggState { return &sumState{} })
	en.RegisterAggregate("AVG", func() AggState { return &sumState{avg: true} })
	en.RegisterAggregate("MIN", func() AggState { return &extremeState{want: -1} })
	en.RegisterAggregate("MAX", func() AggState { return &extremeState{want: 1} })
	en.RegisterAggregate("XMLAGG", func() AggState { return &xmlAggState{} })
	en.RegisterAggregate("COUNT_DISTINCT", func() AggState { return &countDistinctState{seen: map[string]bool{}} })

	// --- temporal aggregates (the paper's OLAP-function mapping) ---
	en.RegisterAggregate("TAVG", func() AggState { return &temporalAggState{kind: "avg"} })
	en.RegisterAggregate("TSUM", func() AggState { return &temporalAggState{kind: "sum"} })
	en.RegisterAggregate("TCOUNT", func() AggState { return &temporalAggState{kind: "count"} })
	en.RegisterAggregate("TMAXAGG", func() AggState { return &temporalAggState{kind: "max"} })
	en.RegisterAggregate("TMINAGG", func() AggState { return &temporalAggState{kind: "min"} })
	en.RegisterAggregate("TRISING", func() AggState { return &risingState{} })
}

type countState struct{ n int64 }

func (s *countState) Add(args []relstore.Value) error {
	if len(args) == 0 || !args[0].IsNull() { // COUNT(*) has no args
		s.n++
	}
	return nil
}
func (s *countState) Result() relstore.Value { return relstore.Int(s.n) }

func (s *countState) Merge(other AggState) error {
	o, ok := other.(*countState)
	if !ok {
		return mergeTypeError("COUNT", other)
	}
	s.n += o.n
	return nil
}

// countDistinctState implements COUNT_DISTINCT(expr) — SQL's
// COUNT(DISTINCT expr) as a named aggregate.
type countDistinctState struct{ seen map[string]bool }

func (s *countDistinctState) Add(args []relstore.Value) error {
	if err := wantArgs("COUNT_DISTINCT", args, 1); err != nil {
		return err
	}
	if !args[0].IsNull() {
		s.seen[args[0].Text()] = true
	}
	return nil
}
func (s *countDistinctState) Result() relstore.Value { return relstore.Int(int64(len(s.seen))) }

func (s *countDistinctState) Merge(other AggState) error {
	o, ok := other.(*countDistinctState)
	if !ok {
		return mergeTypeError("COUNT_DISTINCT", other)
	}
	for k := range o.seen {
		s.seen[k] = true
	}
	return nil
}

type sumState struct {
	sum   float64
	n     int64
	anyF  bool
	avg   bool
	empty bool
}

func (s *sumState) Add(args []relstore.Value) error {
	if err := wantArgs("SUM/AVG", args, 1); err != nil {
		return err
	}
	v := args[0]
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("sql: SUM/AVG of non-number %s", v.Kind)
	}
	if v.Kind == relstore.TypeFloat {
		s.anyF = true
	}
	s.sum += f
	s.n++
	return nil
}

// Merge adds the partial sum. Note float addition reassociates here:
// for float inputs the result can differ from serial by rounding, but
// is still deterministic for a fixed morsel partition; integer inputs
// are exact (sums stay within float64's 2^53 integer range).
func (s *sumState) Merge(other AggState) error {
	o, ok := other.(*sumState)
	if !ok {
		return mergeTypeError("SUM/AVG", other)
	}
	s.sum += o.sum
	s.n += o.n
	s.anyF = s.anyF || o.anyF
	return nil
}

func (s *sumState) Result() relstore.Value {
	if s.n == 0 {
		return relstore.Null
	}
	if s.avg {
		return relstore.Float(s.sum / float64(s.n))
	}
	if s.anyF {
		return relstore.Float(s.sum)
	}
	return relstore.Int(int64(s.sum))
}

type extremeState struct {
	want int // sign of Compare(v, best) to replace best
	best relstore.Value
	any  bool
}

func (s *extremeState) Add(args []relstore.Value) error {
	if err := wantArgs("MIN/MAX", args, 1); err != nil {
		return err
	}
	v := args[0]
	if v.IsNull() {
		return nil
	}
	if !s.any || relstore.Compare(v, s.best) == s.want {
		s.best = v
		s.any = true
	}
	return nil
}

func (s *extremeState) Result() relstore.Value {
	if !s.any {
		return relstore.Null
	}
	return s.best
}

func (s *extremeState) Merge(other AggState) error {
	o, ok := other.(*extremeState)
	if !ok {
		return mergeTypeError("MIN/MAX", other)
	}
	if o.any && (!s.any || relstore.Compare(o.best, s.best) == s.want) {
		s.best = o.best
		s.any = true
	}
	return nil
}

// xmlAggState concatenates XML values into a forest.
type xmlAggState struct{ forest *xmltree.Node }

func (s *xmlAggState) Add(args []relstore.Value) error {
	if err := wantArgs("XMLAGG", args, 1); err != nil {
		return err
	}
	if s.forest == nil {
		s.forest = xmltree.NewElement(forestTag)
	}
	appendXMLChild(s.forest, args[0])
	return nil
}

func (s *xmlAggState) Result() relstore.Value {
	if s.forest == nil {
		return relstore.Null
	}
	return relstore.XML(s.forest)
}

func (s *xmlAggState) Merge(other AggState) error {
	o, ok := other.(*xmlAggState)
	if !ok {
		return mergeTypeError("XMLAGG", other)
	}
	if o.forest == nil {
		return nil
	}
	if s.forest == nil {
		s.forest = o.forest
		return nil
	}
	s.forest.Append(o.forest.Children...)
	return nil
}

// risingState implements TRISING(value, tstart, tend): the maximal
// intervals over which a single history rises strictly (the paper's
// RISING aggregate), returned as <intervals><interval/>…</intervals>.
type risingState struct{ in []temporal.WeightedValue }

func (s *risingState) Add(args []relstore.Value) error {
	if err := wantArgs("TRISING", args, 3); err != nil {
		return err
	}
	if args[0].IsNull() {
		return nil
	}
	f, ok := args[0].AsFloat()
	if !ok {
		return fmt.Errorf("sql: TRISING of non-number %s", args[0].Kind)
	}
	iv, err := argInterval("TRISING", args[1], args[2])
	if err != nil {
		return err
	}
	s.in = append(s.in, temporal.WeightedValue{Value: f, Interval: iv})
	return nil
}

func (s *risingState) Merge(other AggState) error {
	o, ok := other.(*risingState)
	if !ok {
		return mergeTypeError("TRISING", other)
	}
	s.in = append(s.in, o.in...)
	return nil
}

func (s *risingState) Result() relstore.Value {
	root := xmltree.NewElement("intervals")
	for _, iv := range temporal.Rising(s.in) {
		root.Append(xmltree.NewElement("interval").
			SetAttr("tstart", iv.Start.String()).
			SetAttr("tend", iv.End.String()))
	}
	return relstore.XML(root)
}

// temporalAggState implements TAVG/TSUM/TCOUNT/TMAXAGG/TMINAGG
// (value, tstart, tend) → <steps><step value tstart tend/>…</steps>.
type temporalAggState struct {
	kind string
	in   []temporal.WeightedValue
}

func (s *temporalAggState) Add(args []relstore.Value) error {
	if err := wantArgs("temporal aggregate", args, 3); err != nil {
		return err
	}
	if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
		return nil
	}
	f, ok := args[0].AsFloat()
	if !ok {
		return fmt.Errorf("sql: temporal aggregate of non-number %s", args[0].Kind)
	}
	iv, err := argInterval("temporal aggregate", args[1], args[2])
	if err != nil {
		return err
	}
	s.in = append(s.in, temporal.WeightedValue{Value: f, Interval: iv})
	return nil
}

func (s *temporalAggState) Merge(other AggState) error {
	o, ok := other.(*temporalAggState)
	if !ok || o.kind != s.kind {
		return mergeTypeError("temporal aggregate", other)
	}
	s.in = append(s.in, o.in...)
	return nil
}

func (s *temporalAggState) Result() relstore.Value {
	var steps []temporal.Step
	switch s.kind {
	case "avg":
		steps = temporal.TAvg(s.in)
	case "sum":
		steps = temporal.TSum(s.in)
	case "count":
		steps = temporal.TCount(s.in)
	case "max":
		steps = temporal.TMax(s.in)
	case "min":
		steps = temporal.TMin(s.in)
	}
	root := xmltree.NewElement("steps")
	for _, st := range steps {
		root.Append(xmltree.NewElement("step").
			SetAttr("value", relstore.Float(st.Value).Text()).
			SetAttr("tstart", st.Interval.Start.String()).
			SetAttr("tend", st.Interval.End.String()))
	}
	return relstore.XML(root)
}

package sqlengine

import (
	"testing"

	"archis/internal/relstore"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, `select id, name from employee where id = 42`).(*SelectStmt)
	if len(stmt.Select) != 2 || len(stmt.From) != 1 || stmt.Where == nil {
		t.Fatalf("bad parse: %+v", stmt)
	}
	if stmt.From[0].Table != "employee" || stmt.From[0].Alias != "employee" {
		t.Errorf("from = %+v", stmt.From[0])
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, `select e.name n2, d.deptno as dn from employee_name as e, employee_deptno d`).(*SelectStmt)
	if stmt.From[0].Alias != "e" || stmt.From[1].Alias != "d" {
		t.Errorf("aliases: %+v", stmt.From)
	}
	if stmt.Select[0].Alias != "n2" || stmt.Select[1].Alias != "dn" {
		t.Errorf("select aliases: %+v", stmt.Select)
	}
}

func TestParsePaperQuery1Translation(t *testing.T) {
	// The paper's SQL/XML translation of QUERY 1 (Section 5.3).
	sql := `
select XMLElement (Name "title_history",
  XMLAgg (XMLElement (Name "title",
    XMLAttributes (T.tstart as "tstart", T.tend as "tend"), T.title)))
from employee_title as T, employee_name as N
where N.id = T.id and N.name = "Bob"
group by N.id`
	stmt := mustParse(t, sql).(*SelectStmt)
	el, ok := stmt.Select[0].Expr.(*XMLElementExpr)
	if !ok || el.Tag != "title_history" {
		t.Fatalf("outer element: %+v", stmt.Select[0].Expr)
	}
	agg, ok := el.Children[0].(*FuncCall)
	if !ok || agg.Name != "XMLAGG" {
		t.Fatalf("inner agg: %+v", el.Children[0])
	}
	inner, ok := agg.Args[0].(*XMLElementExpr)
	if !ok || inner.Tag != "title" || len(inner.Attrs) != 2 {
		t.Fatalf("inner element: %+v", agg.Args[0])
	}
	if inner.Attrs[0].Name != "tstart" || inner.Attrs[1].Name != "tend" {
		t.Errorf("attr names: %+v", inner.Attrs)
	}
	if len(stmt.GroupBy) != 1 {
		t.Error("missing group by")
	}
}

func TestParseDoubleQuotedLiterals(t *testing.T) {
	stmt := mustParse(t, `select name from e where tstart >= "02/04/2003" and name = 'Bob'`).(*SelectStmt)
	conj := splitAnd(stmt.Where, nil)
	if len(conj) != 2 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	lit := conj[0].(*BinaryExpr).R.(*Literal)
	if lit.Value.S != "02/04/2003" {
		t.Errorf("double-quoted literal = %q", lit.Value.S)
	}
}

func TestParseDateLiteral(t *testing.T) {
	stmt := mustParse(t, `select name from e where d = DATE '1994-05-06'`).(*SelectStmt)
	lit := stmt.Where.(*BinaryExpr).R.(*Literal)
	if lit.Value.Kind != relstore.TypeDate || lit.Value.Text() != "1994-05-06" {
		t.Errorf("date literal = %v", lit.Value)
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, `insert into emp (id, name) values (1, 'Bob'), (2, 'Alice')`).(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert: %+v", ins)
	}
	upd := mustParse(t, `update emp set salary = salary * 2, title = 'Boss' where id = 1`).(*UpdateStmt)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update: %+v", upd)
	}
	del := mustParse(t, `delete from emp where id = 1`).(*DeleteStmt)
	if del.Table != "emp" || del.Where == nil {
		t.Errorf("delete: %+v", del)
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, `create table emp (id INT, name VARCHAR(40), salary INT, hired DATE)`).(*CreateTableStmt)
	if len(ct.Columns) != 4 || ct.Columns[3].Type != relstore.TypeDate {
		t.Errorf("create table: %+v", ct)
	}
	ci := mustParse(t, `create index ix on emp (id, hired)`).(*CreateIndexStmt)
	if ci.Name != "ix" || len(ci.Columns) != 2 {
		t.Errorf("create index: %+v", ci)
	}
	dt := mustParse(t, `drop table emp`).(*DropTableStmt)
	if dt.Name != "emp" {
		t.Errorf("drop: %+v", dt)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, `select a from t where a = 1 or b = 2 and c = 3`).(*SelectStmt)
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op: %+v", stmt.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Errorf("AND should bind tighter: %+v", or.R)
	}
	stmt2 := mustParse(t, `select a from t where a + 1 * 2 = 3`).(*SelectStmt)
	add := stmt2.Where.(*BinaryExpr).L.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("arith: %+v", add)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != "*" {
		t.Errorf("* should bind tighter: %+v", add.R)
	}
}

func TestParseNotInBetweenIsNull(t *testing.T) {
	stmt := mustParse(t, `select a from t where a not in (1, 2) and b between 3 and 5 and c is not null and not d = 1`).(*SelectStmt)
	conj := splitAnd(stmt.Where, nil)
	if len(conj) != 4 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if in := conj[0].(*InExpr); !in.Negate || len(in.List) != 2 {
		t.Errorf("not in: %+v", conj[0])
	}
	if _, ok := conj[1].(*BetweenExpr); !ok {
		t.Errorf("between: %+v", conj[1])
	}
	if isn := conj[2].(*IsNullExpr); !isn.Negate {
		t.Errorf("is not null: %+v", conj[2])
	}
	if un := conj[3].(*UnaryExpr); un.Op != "NOT" {
		t.Errorf("not: %+v", conj[3])
	}
}

func TestParseOrderLimit(t *testing.T) {
	stmt := mustParse(t, `select a from t order by a desc, b limit 10`).(*SelectStmt)
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order: %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from t",
		"select a from",
		"select a from t where",
		"insert into t",
		"create view v",
		"select a from t limit x",
		"select a from t trailing garbage (",
		"select xmlelement(noname) from t",
		"select a from t where a = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "select a -- trailing comment\nfrom t -- another\n").(*SelectStmt)
	if len(stmt.Select) != 1 {
		t.Error("comment parsing broken")
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, `select case when a = 1 then 'one' when a = 2 then 'two' else 'many' end from t`).(*SelectStmt)
	c := stmt.Select[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case: %+v", c)
	}
}

func TestParseBlockCommentsAndParenWrapping(t *testing.T) {
	for _, sql := range []string{
		"/* leading */ select a from t",
		"select /* mid */ a from t /* trailing */",
		"select a /* multi\nline */ from t",
		"(select a from t)",
		"((select a from t))",
		"-- note\n(select a from t);",
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
			continue
		}
		if s, ok := stmt.(*SelectStmt); !ok || len(s.Select) != 1 {
			t.Errorf("Parse(%q) = %T", sql, stmt)
		}
	}
	for _, sql := range []string{
		"(select a from t",      // unbalanced
		"(select a from t))",    // extra close
		"select a from t /* x",  // unterminated comment swallows rest
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

package sqlengine

import (
	"context"
	"fmt"
)

// Query cancellation. The served path (archis-serve) runs every query
// under a context with a deadline; for a cancelled query to actually
// stop mid-scan, the morsel and batch drain loops must poll the
// context. Polling a channel per row would dominate tight scan loops,
// so each drain goroutine owns a cancelProbe: tick() pays one counter
// increment per row and consults the Done channel every probeInterval
// rows, while check() consults it immediately at coarse boundaries
// (per morsel, per batch, per join fold). Probes are never shared
// across goroutines — the counter is unsynchronized by design.

// probeInterval is the row granularity of tick(). At even 10M rows/s
// per worker this bounds cancellation latency well under a
// millisecond, for a per-row cost of one increment and one branch.
const probeInterval = 1024

type cancelProbe struct {
	ctx  context.Context
	done <-chan struct{}
	n    uint
}

// newCancelProbe returns a probe for ctx, or nil when ctx can never be
// cancelled (nil or context.Background()); all probe methods are
// no-ops on a nil probe, so unserved queries pay nothing.
func newCancelProbe(ctx context.Context) *cancelProbe {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return &cancelProbe{ctx: ctx, done: done}
}

// tick is the per-row poll: it reports cancellation only every
// probeInterval calls.
func (c *cancelProbe) tick() bool {
	if c == nil {
		return false
	}
	c.n++
	if c.n%probeInterval != 0 {
		return false
	}
	return c.check()
}

// check polls the Done channel immediately (morsel/batch boundaries).
func (c *cancelProbe) check() bool {
	if c == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// err renders the cancellation as a query error carrying the context's
// cause (deadline exceeded vs explicit cancel).
func (c *cancelProbe) err() error {
	return fmt.Errorf("sql: query cancelled: %w", context.Cause(c.ctx))
}

package sqlengine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"archis/internal/obs"
	"archis/internal/relstore"
	"archis/internal/temporal"
)

// VirtualTable is a read-only table-valued source; ArchIS registers
// BlockZIP-compressed attribute tables as virtual tables so translated
// queries run unchanged against compressed storage.
//
// Rows passed to fn are borrowed: they may alias the implementation's
// internal (immutable) storage, so callers must not mutate them or
// their cells. Implementations that additionally satisfy
// relstore.MorselSource participate in morsel-parallel scans.
type VirtualTable interface {
	Schema() relstore.Schema
	// Scan iterates rows; bounds are page/block pruning hints in the
	// same form as relstore zone bounds (the implementation may ignore
	// them). fn returns false to stop.
	Scan(bounds []relstore.ZoneBound, fn func(relstore.Row) bool) error
}

// ChangeType labels a DML trigger event.
type ChangeType uint8

const (
	ChangeInsert ChangeType = iota
	ChangeUpdate
	ChangeDelete
)

func (c ChangeType) String() string {
	switch c {
	case ChangeInsert:
		return "INSERT"
	case ChangeUpdate:
		return "UPDATE"
	default:
		return "DELETE"
	}
}

// TriggerEvent describes one row-level change.
type TriggerEvent struct {
	Type  ChangeType
	Table string
	Old   relstore.Row // nil for INSERT
	New   relstore.Row // nil for DELETE
}

// Trigger is a row-level after-trigger. This is how ArchIS-DB2-style
// change capture archives current-database updates into H-tables.
type Trigger func(ev TriggerEvent) error

// Engine executes SQL against a relstore database.
type Engine struct {
	DB *relstore.Database

	// now is the engine clock at day granularity — the value of
	// CURRENT_DATE and the instantiation of "now" (Section 4.3).
	// Atomic because snapshot readers evaluate CURRENT_DATE/TSPAN/RTEND
	// while a writer (log replay, ingest) moves the clock.
	now atomic.Int64

	// Workers caps intra-query morsel parallelism for single-table
	// scan+filter / scan+aggregate SELECTs. 0 means GOMAXPROCS; 1
	// forces the serial path (pre-parallelism behavior); values < 0
	// are treated as 1. Writers stay exclusive regardless — only read
	// paths fan out.
	Workers int

	// Planner enables cost-based access-path and join planning
	// (DESIGN.md §12; New sets it). False falls back to the legacy
	// fixed heuristics — always prefer an eq-index probe, build hash
	// joins on the inner side, fold joins in FROM order — kept for
	// planner-on/off differential testing.
	Planner bool

	// Columnar enables the vectorized single-table path over storage
	// that streams column batches (DESIGN.md §13; New sets it). False
	// falls back to the row-at-a-time executor on the same storage —
	// kept for columnar-on/off differential testing; results are
	// identical either way.
	Columnar bool

	scalarFuncs map[string]ScalarFunc
	aggFuncs    map[string]AggFunc
	virtMu      sync.RWMutex
	virtual     map[string]VirtualTable
	triggers    map[string][]Trigger
}

// Now returns the engine clock (CURRENT_DATE).
func (en *Engine) Now() temporal.Date { return temporal.Date(en.now.Load()) }

// SetNow moves the engine clock.
func (en *Engine) SetNow(d temporal.Date) { en.now.Store(int64(d)) }

// scanWorkers resolves the configured Workers value to an effective
// worker count.
func (en *Engine) scanWorkers() int {
	switch {
	case en.Workers == 0:
		return runtime.GOMAXPROCS(0)
	case en.Workers < 1:
		return 1
	}
	return en.Workers
}

// New creates an engine over db with the built-in function library.
func New(db *relstore.Database) *Engine {
	en := &Engine{
		DB:          db,
		Planner:     true,
		Columnar:    true,
		scalarFuncs: map[string]ScalarFunc{},
		aggFuncs:    map[string]AggFunc{},
		virtual:     map[string]VirtualTable{},
		triggers:    map[string][]Trigger{},
	}
	en.SetNow(temporal.FromTime(time.Now()))
	en.registerBuiltins()
	return en
}

// RegisterVirtual exposes a virtual table under the given name.
func (en *Engine) RegisterVirtual(name string, vt VirtualTable) {
	en.virtMu.Lock()
	en.virtual[strings.ToLower(name)] = vt
	en.virtMu.Unlock()
}

// UnregisterVirtual removes a virtual table.
func (en *Engine) UnregisterVirtual(name string) {
	en.virtMu.Lock()
	delete(en.virtual, strings.ToLower(name))
	en.virtMu.Unlock()
}

// lookupVirtual resolves a registered virtual table under the read
// lock (registration happens on the writer while readers plan).
func (en *Engine) lookupVirtual(name string) (VirtualTable, bool) {
	en.virtMu.RLock()
	vt, ok := en.virtual[strings.ToLower(name)]
	en.virtMu.RUnlock()
	return vt, ok
}

// AddTrigger attaches a row-level after-trigger to a table.
func (en *Engine) AddTrigger(table string, tr Trigger) {
	key := strings.ToLower(table)
	en.triggers[key] = append(en.triggers[key], tr)
}

// DropTriggers removes all triggers from a table.
func (en *Engine) DropTriggers(table string) {
	delete(en.triggers, strings.ToLower(table))
}

func (en *Engine) fire(ev TriggerEvent) error {
	for _, tr := range en.triggers[strings.ToLower(ev.Table)] {
		if err := tr(ev); err != nil {
			return fmt.Errorf("sql: trigger on %s: %w", ev.Table, err)
		}
	}
	return nil
}

// Result is the outcome of a statement.
type Result struct {
	Columns      []string
	Rows         []relstore.Row
	RowsAffected int
}

// Exec parses and executes one SQL statement.
func (en *Engine) Exec(sql string) (*Result, error) {
	return en.ExecTraced(sql, nil)
}

// ExecCtx is Exec under a cancellable context: read statements poll
// ctx at row granularity in every drain loop (serial scans, morsel
// workers, batch drains, join probes) and return a wrapped ctx error
// promptly when it fires. DML and DDL are not interruptible once
// started — cancelling mid-mutation would leave partial state — so ctx
// is checked once before they run.
func (en *Engine) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	return en.ExecTracedAtCtx(ctx, sql, nil, nil)
}

// ExecTraced is Exec with execution-stage spans recorded as children
// of sp. A nil sp disables tracing at the cost of one pointer check
// per hook (the DESIGN.md §11 contract).
func (en *Engine) ExecTraced(sql string, sp *obs.Span) (*Result, error) {
	ps := sp.Child("parse")
	stmt, err := Parse(sql)
	ps.End()
	if err != nil {
		return nil, err
	}
	return en.ExecStmtTraced(stmt, sp)
}

// MustExec is Exec for statements that must succeed (setup code).
func (en *Engine) MustExec(sql string) *Result {
	res, err := en.Exec(sql)
	if err != nil {
		panic(err)
	}
	return res
}

// ExecStmt executes a parsed statement.
func (en *Engine) ExecStmt(stmt Statement) (*Result, error) {
	return en.ExecStmtTraced(stmt, nil)
}

// ExecStmtTraced executes a parsed statement with tracing under sp
// (nil disables).
func (en *Engine) ExecStmtTraced(stmt Statement, sp *obs.Span) (*Result, error) {
	return en.ExecStmtTracedAt(stmt, sp, nil)
}

// ExecTracedAt is ExecTraced pinned to an externally supplied snapshot
// (nil pins the current version per statement). Callers that translate
// and execute under one consistent view — core's query path, ReadAsOf —
// pass the snapshot they already hold; it is not released here.
func (en *Engine) ExecTracedAt(sql string, sp *obs.Span, sn *relstore.Snapshot) (*Result, error) {
	return en.ExecTracedAtCtx(context.Background(), sql, sp, sn)
}

// ExecTracedAtCtx is ExecTracedAt under a cancellable context (see
// ExecCtx for the cancellation contract).
func (en *Engine) ExecTracedAtCtx(ctx context.Context, sql string, sp *obs.Span, sn *relstore.Snapshot) (*Result, error) {
	ps := sp.Child("parse")
	stmt, err := Parse(sql)
	ps.End()
	if err != nil {
		return nil, err
	}
	return en.ExecStmtTracedAtCtx(ctx, stmt, sp, sn)
}

// snapshotFor resolves the snapshot a read statement runs under: the
// caller-supplied one (kept alive by the caller) or a freshly pinned
// current version released when the statement finishes.
func (en *Engine) snapshotFor(sn *relstore.Snapshot) (*relstore.Snapshot, func()) {
	if sn != nil {
		return sn, func() {}
	}
	own := en.DB.Snapshot()
	return own, own.Release
}

// ExecStmtTracedAt executes a parsed statement with tracing under sp;
// SELECT and EXPLAIN run against sn (or a freshly pinned snapshot when
// sn is nil), so they never block on — or observe a torn write from —
// a concurrent writer. DML and DDL always target the live tables.
func (en *Engine) ExecStmtTracedAt(stmt Statement, sp *obs.Span, sn *relstore.Snapshot) (*Result, error) {
	return en.ExecStmtTracedAtCtx(context.Background(), stmt, sp, sn)
}

// ExecStmtTracedAtCtx is ExecStmtTracedAt under a cancellable context
// (see ExecCtx for the cancellation contract).
func (en *Engine) ExecStmtTracedAtCtx(ctx context.Context, stmt Statement, sp *obs.Span, sn *relstore.Snapshot) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		sn, release := en.snapshotFor(sn)
		defer release()
		return en.execSelect(ctx, s, sp, sn)
	case *ExplainStmt:
		sn, release := en.snapshotFor(sn)
		defer release()
		return en.execExplain(ctx, s, sn)
	}
	// Mutations are not interruptible mid-statement; honor a context
	// that fired before the statement started.
	if cc := newCancelProbe(ctx); cc.check() {
		return nil, cc.err()
	}
	switch s := stmt.(type) {
	case *InsertStmt:
		return en.execInsert(s)
	case *UpdateStmt:
		return en.execUpdate(s)
	case *DeleteStmt:
		return en.execDelete(s)
	case *CreateTableStmt:
		if _, err := en.DB.CreateTable(relstore.NewSchema(s.Name, s.Columns...)); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		if _, err := en.DB.CreateIndex(s.Name, s.Table, s.Columns...); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DropTableStmt:
		if err := en.DB.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

// coerce converts v to the column type where a safe conversion exists.
func coerce(v relstore.Value, t relstore.Type) (relstore.Value, error) {
	if v.IsNull() || v.Kind == t {
		return v, nil
	}
	switch t {
	case relstore.TypeDate:
		d, err := argDate("coerce", v)
		if err != nil {
			return relstore.Null, err
		}
		return relstore.DateV(d), nil
	case relstore.TypeInt:
		n, ok := v.AsInt()
		if !ok {
			return relstore.Null, fmt.Errorf("sql: cannot convert %s to INT", v.Kind)
		}
		return relstore.Int(n), nil
	case relstore.TypeFloat:
		f, ok := v.AsFloat()
		if !ok {
			return relstore.Null, fmt.Errorf("sql: cannot convert %s to FLOAT", v.Kind)
		}
		return relstore.Float(f), nil
	case relstore.TypeString:
		return relstore.String_(v.Text()), nil
	case relstore.TypeBool:
		return relstore.Bool(v.AsBool()), nil
	}
	return relstore.Null, fmt.Errorf("sql: cannot convert %s to %s", v.Kind, t)
}

func (en *Engine) execInsert(s *InsertStmt) (*Result, error) {
	tbl, err := en.DB.MustTable(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	colPos := make([]int, 0, len(schema.Columns))
	if len(s.Columns) == 0 {
		for i := range schema.Columns {
			colPos = append(colPos, i)
		}
	} else {
		for _, c := range s.Columns {
			pos := schema.ColumnIndex(c)
			if pos < 0 {
				return nil, fmt.Errorf("sql: table %s has no column %s", s.Table, c)
			}
			colPos = append(colPos, pos)
		}
	}
	empty := &rowLayout{}
	n := 0
	for _, exprs := range s.Rows {
		if len(exprs) != len(colPos) {
			return nil, fmt.Errorf("sql: INSERT row has %d values, expected %d", len(exprs), len(colPos))
		}
		row := make(relstore.Row, len(schema.Columns))
		for i := range row {
			row[i] = relstore.Null
		}
		for i, e := range exprs {
			fn, err := en.compileExpr(e, empty)
			if err != nil {
				return nil, err
			}
			v, err := fn(nil)
			if err != nil {
				return nil, err
			}
			if row[colPos[i]], err = coerce(v, schema.Columns[colPos[i]].Type); err != nil {
				return nil, err
			}
		}
		if err := en.InsertRow(s.Table, row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{RowsAffected: n}, nil
}

// InsertRow inserts a pre-built row and fires triggers.
func (en *Engine) InsertRow(table string, row relstore.Row) error {
	tbl, err := en.DB.MustTable(table)
	if err != nil {
		return err
	}
	if _, err := tbl.Insert(row); err != nil {
		return err
	}
	return en.fire(TriggerEvent{Type: ChangeInsert, Table: tbl.Name(), New: row})
}

func (en *Engine) execUpdate(s *UpdateStmt) (*Result, error) {
	tbl, err := en.DB.MustTable(s.Table)
	if err != nil {
		return nil, err
	}
	layout := layoutFor(s.Table, tbl.Schema())
	var where evalFunc
	if s.Where != nil {
		if where, err = en.compileExpr(s.Where, layout); err != nil {
			return nil, err
		}
	}
	type setOp struct {
		pos int
		fn  evalFunc
	}
	sets := make([]setOp, len(s.Set))
	for i, a := range s.Set {
		pos := tbl.Schema().ColumnIndex(a.Column)
		if pos < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", s.Table, a.Column)
		}
		fn, err := en.compileExpr(a.Expr, layout)
		if err != nil {
			return nil, err
		}
		sets[i] = setOp{pos: pos, fn: fn}
	}
	// Materialize targets first: mutating while scanning would skew
	// the scan.
	targets, err := en.findTargets(tbl, s.Table, s.Where, where)
	if err != nil {
		return nil, err
	}
	for _, tg := range targets {
		newRow := tg.old.Clone()
		for _, op := range sets {
			v, err := op.fn(tg.old)
			if err != nil {
				return nil, err
			}
			if newRow[op.pos], err = coerce(v, tbl.Schema().Columns[op.pos].Type); err != nil {
				return nil, err
			}
		}
		if err := tbl.Update(tg.rid, newRow); err != nil {
			return nil, err
		}
		if err := en.fire(TriggerEvent{Type: ChangeUpdate, Table: tbl.Name(), Old: tg.old, New: newRow}); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: len(targets)}, nil
}

func (en *Engine) execDelete(s *DeleteStmt) (*Result, error) {
	tbl, err := en.DB.MustTable(s.Table)
	if err != nil {
		return nil, err
	}
	var where evalFunc
	if s.Where != nil {
		if where, err = en.compileExpr(s.Where, layoutFor(s.Table, tbl.Schema())); err != nil {
			return nil, err
		}
	}
	targets, err := en.findTargets(tbl, s.Table, s.Where, where)
	if err != nil {
		return nil, err
	}
	for _, tg := range targets {
		if err := tbl.Delete(tg.rid); err != nil {
			return nil, err
		}
		if err := en.fire(TriggerEvent{Type: ChangeDelete, Table: tbl.Name(), Old: tg.old}); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: len(targets)}, nil
}

// dmlTarget is one row selected for UPDATE/DELETE.
type dmlTarget struct {
	rid relstore.RID
	old relstore.Row
}

// findTargets locates the rows matching a DML WHERE clause, using an
// index-equality fast path and zone-map pruning when possible so
// point updates don't scan the whole table.
func (en *Engine) findTargets(tbl *relstore.Table, alias string, whereExpr Expr, compiled evalFunc) ([]dmlTarget, error) {
	var targets []dmlTarget
	emit := func(rid relstore.RID, row relstore.Row) (bool, error) {
		if compiled != nil {
			v, err := compiled(row)
			if err != nil {
				return false, err
			}
			if !v.AsBool() {
				return true, nil
			}
		}
		targets = append(targets, dmlTarget{rid, row.Clone()})
		return true, nil
	}

	src := &source{alias: alias, schema: tbl.Schema(), base: tbl}
	var bounds []relstore.ZoneBound
	if whereExpr != nil {
		for _, c := range splitAnd(whereExpr, nil) {
			col, op, v, ok := en.colConstConjunct(c, src, []*source{src})
			if !ok {
				continue
			}
			ct := tbl.Schema().Columns[col].Type
			zv, err := coerce(v, ct)
			if err != nil {
				continue
			}
			if (ct == relstore.TypeInt || ct == relstore.TypeDate) &&
				(zv.Kind == relstore.TypeInt || zv.Kind == relstore.TypeDate) {
				bounds = append(bounds, relstore.ZoneBound{Col: col, Op: op, Bound: zv.I})
			}
			if op == "=" {
				if ix := tbl.IndexOn(col); ix != nil {
					for _, rid := range ix.Lookup([]relstore.Value{zv}) {
						row, live, err := tbl.GetBorrow(rid)
						if err != nil {
							return nil, err
						}
						if !live {
							continue
						}
						if _, err := emit(rid, row); err != nil {
							return nil, err
						}
					}
					return targets, nil
				}
			}
		}
	}
	var scanErr error
	err := tbl.ScanBorrow(bounds, func(rid relstore.RID, row relstore.Row) bool {
		cont, err := emit(rid, row)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	if err == nil {
		err = scanErr
	}
	return targets, err
}

func layoutFor(alias string, s relstore.Schema) *rowLayout {
	l := &rowLayout{cols: make([]colBinding, len(s.Columns))}
	for i, c := range s.Columns {
		l.cols[i] = colBinding{qual: alias, name: c.Name, typ: c.Type}
	}
	return l
}

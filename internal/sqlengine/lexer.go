package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // 'abc' or "abc" — both are literals in this dialect
	tokNumber
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; SQL statements are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		if err := l.skipSpace(); err != nil {
			return nil, err
		}
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'' || c == '"':
			s, err := l.lexQuoted(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			l.toks = append(l.toks, token{kind: tokIdent, text: l.lexIdent(), pos: start})
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

// skipSpace advances past whitespace, `-- …` line comments and
// `/* … */` block comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return fmt.Errorf("sql: unterminated block comment at %d", l.pos)
			}
			l.pos += 2 + end + 2
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return nil
		}
		l.pos++
	}
	return nil
}

func (l *lexer) lexQuoted(quote byte) (string, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string at %d", l.pos)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

var twoCharSymbols = map[string]bool{"<=": true, ">=": true, "!=": true, "<>": true, "||": true}

func (l *lexer) lexSymbol() (string, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			return two, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.', ';':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}

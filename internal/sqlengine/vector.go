package sqlengine

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"

	"archis/internal/obs"
	"archis/internal/relstore"
	"archis/internal/temporal"
)

// Vectorized single-table execution. The columnar sibling of
// parallel.go: when the source's storage can stream column batches
// (BatchSource — the compressed store's columnar path), filter
// conjuncts of the form `col op const` compile into batch kernels that
// narrow a selection vector column-at-a-time, and only the surviving
// rows are materialized for aggregation or projection. A statement
// qualifies when:
//
//   - the engine's columnar mode is on,
//   - it reads exactly one virtual source providing ScanBatches,
//   - the planner found no equality-index probe, and
//   - (parallel only) every aggregate supports partial merging.
//
// Results are identical to the row path: batch morsels are consumed in
// morsel order (or merged in morsel order after a parallel fan-out),
// selection vectors keep ascending row order inside each batch, and
// when any conjunct cannot be kernelized the full compiled filter
// reruns on kernel survivors, so row and group order match the serial
// scan exactly.

// BatchSource is the storage interface behind the vectorized path.
// Implementations stream batches whose selected rows, concatenated in
// order, reproduce the serial Scan row sequence (see
// relstore.BatchFunc). needed marks the columns the consumer will
// read; nil means all.
type BatchSource interface {
	ScanBatches(bounds []relstore.ZoneBound, needed []bool) ([]relstore.BatchFunc, error)
}

// colKernel is one compiled `col op const` conjunct, evaluated against
// a column vector. The fast paths compare raw numeric payloads against
// a precomputed float; everything else reconstructs the Value and
// defers to compareValues, so kernel semantics match the compiled
// row filter bit for bit.
type colKernel struct {
	col int
	cv  relstore.Value // original constant, for the generic fallback
	cf  float64        // numeric image of the constant (fast paths)
	// Constant shape: numConst means the constant itself is numeric
	// (Int/Float/Date — every numeric column value compares as float,
	// exactly relstore.Compare); dateConst means a string constant that
	// parses as a date, whose fast path applies only to Date values
	// (compareValues' date-string coercion).
	numConst  bool
	dateConst bool
	// Truth table for the comparison outcome.
	ltOK, eqOK, gtOK bool
}

func (k *colKernel) cmpF(x float64) bool {
	switch {
	case x < k.cf:
		return k.ltOK
	case x > k.cf:
		return k.gtOK
	default:
		return k.eqOK
	}
}

// pass reports whether row i of vec survives this kernel, mirroring
// the row filter: NULL on either side drops the row, otherwise the
// comparison outcome decides.
func (k *colKernel) pass(vec *relstore.ColVec, i int) bool {
	kind := vec.KindAt(i)
	if kind == relstore.TypeNull {
		return false
	}
	if k.numConst {
		switch kind {
		case relstore.TypeInt, relstore.TypeDate:
			return k.cmpF(float64(vec.I[i]))
		case relstore.TypeFloat:
			return k.cmpF(vec.F[i])
		}
	}
	if k.dateConst && kind == relstore.TypeDate {
		return k.cmpF(float64(vec.I[i]))
	}
	v := vec.ValueAt(i)
	if v.IsNull() {
		return false
	}
	cmp := compareValues(v, k.cv)
	switch {
	case cmp < 0:
		return k.ltOK
	case cmp > 0:
		return k.gtOK
	default:
		return k.eqOK
	}
}

// batchPlan is the compiled vectorized filter: the kernels plus
// whether any conjunct resisted kernelization (residual true reruns
// the full row filter on kernel survivors).
type batchPlan struct {
	kernels  []colKernel
	residual bool
}

// compileKernels turns the kernelizable conjuncts into colKernels.
func (en *Engine) compileKernels(conjuncts []Expr, s *source, sources []*source) batchPlan {
	var bp batchPlan
	for _, c := range conjuncts {
		col, op, v, ok := en.colConstConjunct(c, s, sources)
		if !ok {
			bp.residual = true
			continue
		}
		k := colKernel{col: col, cv: v}
		switch op {
		case "=":
			k.eqOK = true
		case "<":
			k.ltOK = true
		case "<=":
			k.ltOK, k.eqOK = true, true
		case ">":
			k.gtOK = true
		case ">=":
			k.gtOK, k.eqOK = true, true
		default:
			bp.residual = true
			continue
		}
		switch v.Kind {
		case relstore.TypeInt, relstore.TypeDate:
			k.numConst, k.cf = true, float64(v.I)
		case relstore.TypeFloat:
			k.numConst, k.cf = true, v.F
		case relstore.TypeString:
			if s.schema.Columns[col].Type == relstore.TypeDate {
				if d, err := temporal.ParseDate(strings.TrimSpace(v.S)); err == nil {
					k.dateConst, k.cf = true, float64(d)
				}
			}
		}
		bp.kernels = append(bp.kernels, k)
	}
	return bp
}

// batchNeededCols computes the columns the statement reads from its
// single source: filter conjuncts, select list, GROUP BY, ORDER BY and
// HAVING. A star item or a reference that does not resolve returns nil
// (decode everything).
func batchNeededCols(stmt *SelectStmt, conjuncts []Expr, s *source) []bool {
	needed := make([]bool, len(s.schema.Columns))
	resolved := true
	mark := func(e Expr) {
		walkExpr(e, func(sub Expr) {
			if ref, isRef := sub.(*ColRef); isRef {
				pos := s.schema.ColumnIndex(ref.Name)
				if pos < 0 {
					resolved = false
					return
				}
				needed[pos] = true
			}
		})
	}
	for _, it := range stmt.Select {
		if it.Star {
			return nil
		}
		mark(it.Expr)
	}
	for _, c := range conjuncts {
		mark(c)
	}
	for _, g := range stmt.GroupBy {
		mark(g)
	}
	for _, o := range stmt.OrderBy {
		mark(o.Expr)
	}
	if stmt.Having != nil {
		mark(stmt.Having)
	}
	if !resolved {
		return nil
	}
	return needed
}

// batchWork is the per-worker scratch of the vectorized drain loop.
// Each worker (or the one serial loop) owns one, so nothing inside
// needs synchronization.
type batchWork struct {
	sel     []int32      // engine-owned selection buffer
	scratch relstore.Row // row image filled per surviving row
}

// execSingleBatch attempts the vectorized path for a single-source
// SELECT. handled=false means the caller should try the next path
// (parallel row morsels, then the serial plan).
func (en *Engine) execSingleBatch(ctx context.Context, stmt *SelectStmt, s *source, conjuncts []Expr, sources []*source, sp *obs.Span) (*Result, bool, error) {
	if !en.Columnar || s.virtual == nil {
		return nil, false, nil
	}
	bs, ok := s.virtual.(BatchSource)
	if !ok {
		return nil, false, nil
	}
	plan, err := en.planScan(s, conjuncts, sources)
	if err != nil {
		return nil, true, err
	}
	if plan.eqIndex != nil {
		return nil, false, nil
	}
	layout := layoutFor(s.alias, s.schema)
	workers := en.scanWorkers()

	var gplan *groupPlan
	if en.isGrouped(stmt) {
		gplan, err = en.compileGrouping(stmt, layout)
		if err != nil {
			return nil, true, err
		}
		if workers > 1 && !gplan.mergeable() {
			// Serial consumption folds everything into one accumulator,
			// so only the parallel fan-out needs mergeable partials.
			workers = 1
		}
	}

	bp := en.compileKernels(conjuncts, s, sources)
	filter := plan.filter
	needed := batchNeededCols(stmt, conjuncts, s)

	morsels, err := bs.ScanBatches(plan.bounds, needed)
	if err != nil {
		return nil, true, err
	}

	if workers > len(morsels) {
		workers = len(morsels)
	}
	if workers <= 1 {
		return en.execBatchSerial(ctx, stmt, s, plan, gplan, bp, filter, needed, morsels, layout, sources, sp)
	}
	return en.execBatchParallel(ctx, stmt, s, plan, gplan, bp, filter, needed, morsels, layout, sources, workers, sp)
}

// execBatchSerial drains batch morsels in order on the calling
// goroutine under a "scan" span, folding into one accumulator (any
// aggregate works) or one row list.
func (en *Engine) execBatchSerial(ctx context.Context, stmt *SelectStmt, s *source, plan *scanPlan, gplan *groupPlan,
	bp batchPlan, filter evalFunc, needed []bool, morsels []relstore.BatchFunc, layout *rowLayout,
	sources []*source, sp *obs.Span) (*Result, bool, error) {
	ss := sp.Child("scan")
	ss.SetAttr("table", s.alias)
	ss.SetAttr("access", "colscan")
	if plan.est.Planned {
		ss.SetInt("est_rows", int64(plan.est.OutRows))
	}
	var acc *groupAcc
	if gplan != nil {
		acc = gplan.newAcc()
	}
	var rows []relstore.Row
	cc := newCancelProbe(ctx)
	w := &batchWork{scratch: make(relstore.Row, len(s.schema.Columns))}
	for _, m := range morsels {
		if cc.check() {
			ss.End()
			return nil, true, cc.err()
		}
		if err := en.runBatchMorsel(m, bp, filter, needed, w, cc, acc, &rows); err != nil {
			ss.End()
			return nil, true, err
		}
	}
	if gplan != nil {
		ss.End()
		res, err := en.finalizeGroups(gplan, acc, sp)
		return res, true, err
	}
	ss.AddRows(0, int64(len(rows)))
	ss.End()
	res, err := en.project(stmt, rows, layout, sources, sp)
	return res, true, err
}

// execBatchParallel fans batch morsels out over workers under a
// "morsel-fanout" span, merging per-morsel partials in morsel order —
// the same combination rule as the row-morsel path, so results are
// identical to the serial drain.
func (en *Engine) execBatchParallel(ctx context.Context, stmt *SelectStmt, s *source, plan *scanPlan, gplan *groupPlan,
	bp batchPlan, filter evalFunc, needed []bool, morsels []relstore.BatchFunc, layout *rowLayout,
	sources []*source, workers int, sp *obs.Span) (*Result, bool, error) {
	fanout := sp.Child("morsel-fanout")
	fanout.SetAttr("table", s.alias)
	fanout.SetAttr("access", "colscan")
	fanout.SetInt("morsels", int64(len(morsels)))
	if plan.est.Planned {
		fanout.SetInt("est_rows", int64(plan.est.OutRows))
	}
	fanout.SetInt("workers", int64(workers))

	accs := make([]*groupAcc, len(morsels))
	rowss := make([][]relstore.Row, len(morsels))
	errs := make([]error, len(morsels))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker probe: the row counter is unsynchronized.
			cc := newCancelProbe(ctx)
			w := &batchWork{scratch: make(relstore.Row, len(s.schema.Columns))}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(morsels) || failed.Load() {
					return
				}
				if cc.check() {
					errs[i] = cc.err()
					failed.Store(true)
					return
				}
				var acc *groupAcc
				if gplan != nil {
					acc = gplan.newAcc()
					accs[i] = acc
				}
				if err := en.runBatchMorsel(morsels[i], bp, filter, needed, w, cc, acc, &rowss[i]); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	fanout.End()
	// Report the error of the earliest morsel, matching what the serial
	// drain would have hit first.
	for _, err := range errs {
		if err != nil {
			return nil, true, err
		}
	}

	if gplan != nil {
		mg := sp.Child("agg-merge")
		acc := gplan.newAcc()
		for _, a := range accs {
			if a == nil {
				continue
			}
			if err := acc.merge(a); err != nil {
				return nil, true, err
			}
		}
		mg.SetInt("partials", int64(len(accs)))
		mg.AddRows(0, int64(len(acc.order)))
		mg.End()
		res, err := en.finalizeGroups(gplan, acc, sp)
		return res, true, err
	}

	n := 0
	for _, rs := range rowss {
		n += len(rs)
	}
	fanout.AddRows(0, int64(n))
	rows := make([]relstore.Row, 0, n)
	for _, rs := range rowss {
		rows = append(rows, rs...)
	}
	res, err := en.project(stmt, rows, layout, sources, sp)
	return res, true, err
}

// runBatchMorsel drains one batch morsel: kernels narrow the selection
// vector column-at-a-time, survivors are materialized into the scratch
// row (needed columns only — batchNeededCols marks everything the
// statement reads, so unneeded slots can hold stale values no consumer
// looks at), the residual filter (when present) makes the final call, and
// each passing row feeds the accumulator or the row list (cloned —
// batch payloads are only valid during the callback).
func (en *Engine) runBatchMorsel(m relstore.BatchFunc, bp batchPlan, filter evalFunc,
	needed []bool, w *batchWork, cc *cancelProbe, acc *groupAcc, rows *[]relstore.Row) error {
	var rowErr error
	_, err := m(func(b *relstore.ColBatch) bool {
		// Batches whose rows the kernels all reject never reach emit, so
		// poll once per batch too.
		if cc.check() {
			rowErr = cc.err()
			return false
		}
		// The kernels subsume the full row filter only when every
		// conjunct kernelized AND every kernel's vector is actually
		// decoded in this batch (always true by construction — kernel
		// columns are in the needed set — but a missing vector must
		// degrade to the filter, never to a wrong result).
		needFilter := bp.residual
		sel := b.Sel
		owned := false
		for ki := range bp.kernels {
			k := &bp.kernels[ki]
			vec := &b.Cols[k.col]
			if !vec.Present {
				needFilter = true
				continue
			}
			if !owned {
				// First kernel filters into the engine-owned buffer —
				// b.Sel belongs to the store and is never written.
				w.sel = w.sel[:0]
				if sel == nil {
					for i := 0; i < b.N; i++ {
						if k.pass(vec, i) {
							w.sel = append(w.sel, int32(i))
						}
					}
				} else {
					for _, i := range sel {
						if k.pass(vec, int(i)) {
							w.sel = append(w.sel, i)
						}
					}
				}
				sel, owned = w.sel, true
				continue
			}
			// Later kernels compact in place (writes trail reads).
			out := sel[:0]
			for _, i := range sel {
				if k.pass(vec, int(i)) {
					out = append(out, i)
				}
			}
			sel = out
		}

		emit := func(i int) bool {
			if cc.tick() {
				rowErr = cc.err()
				return false
			}
			b.FillRow(w.scratch, i, needed)
			if filter != nil && needFilter {
				v, err := filter(w.scratch)
				if err != nil {
					rowErr = err
					return false
				}
				if !v.AsBool() {
					return true
				}
			}
			if acc != nil {
				if err := acc.add(w.scratch); err != nil {
					rowErr = err
					return false
				}
				return true
			}
			*rows = append(*rows, w.scratch.Clone())
			return true
		}
		// sel == nil normally means "no selection: every row". But once a
		// kernel owned the buffer, nil just means the (never-grown) buffer
		// is empty — an empty selection, not a full one.
		if sel == nil && !owned {
			for i := 0; i < b.N; i++ {
				if !emit(i) {
					return false
				}
			}
		} else {
			for _, i := range sel {
				if !emit(int(i)) {
					return false
				}
			}
		}
		return true
	})
	if err == nil {
		err = rowErr
	}
	return err
}

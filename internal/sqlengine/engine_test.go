package sqlengine

import (
	"strings"
	"testing"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// newHRDB builds a small database shaped like the paper's H-tables for
// the employees of Table 1 / Figure 1.
func newHRDB(t *testing.T) *Engine {
	t.Helper()
	en := New(relstore.NewDatabase())
	en.SetNow(temporal.MustParseDate("1997-01-01"))
	for _, ddl := range []string{
		`create table employee_id (id INT, tstart DATE, tend DATE)`,
		`create table employee_name (id INT, name VARCHAR, tstart DATE, tend DATE)`,
		`create table employee_salary (id INT, salary INT, tstart DATE, tend DATE)`,
		`create table employee_title (id INT, title VARCHAR, tstart DATE, tend DATE)`,
		`create table employee_deptno (id INT, deptno VARCHAR, tstart DATE, tend DATE)`,
		`create table dept_mgrno (deptno VARCHAR, mgrno INT, tstart DATE, tend DATE)`,
	} {
		en.MustExec(ddl)
	}
	// Bob, from Table 1 of the paper.
	en.MustExec(`insert into employee_id values (1001, '1995-01-01', '1996-12-31')`)
	en.MustExec(`insert into employee_name values (1001, 'Bob', '1995-01-01', '1996-12-31')`)
	en.MustExec(`insert into employee_salary values
		(1001, 60000, '1995-01-01', '1995-05-31'),
		(1001, 70000, '1995-06-01', '1996-12-31')`)
	en.MustExec(`insert into employee_title values
		(1001, 'Engineer', '1995-01-01', '1995-09-30'),
		(1001, 'Sr Engineer', '1995-10-01', '1996-01-31'),
		(1001, 'TechLeader', '1996-02-01', '1996-12-31')`)
	en.MustExec(`insert into employee_deptno values
		(1001, 'd01', '1995-01-01', '1995-09-30'),
		(1001, 'd02', '1995-10-01', '1996-12-31')`)
	// A second employee, current.
	en.MustExec(`insert into employee_id values (1002, '1995-03-01', '9999-12-31')`)
	en.MustExec(`insert into employee_name values (1002, 'Alice', '1995-03-01', '9999-12-31')`)
	en.MustExec(`insert into employee_salary values
		(1002, 50000, '1995-03-01', '1995-12-31'),
		(1002, 65000, '1996-01-01', '9999-12-31')`)
	en.MustExec(`insert into employee_title values (1002, 'Engineer', '1995-03-01', '9999-12-31')`)
	en.MustExec(`insert into employee_deptno values (1002, 'd01', '1995-03-01', '9999-12-31')`)
	// Departments, from Table 2.
	en.MustExec(`insert into dept_mgrno values
		('d01', 2501, '1994-01-01', '1998-12-31'),
		('d02', 3402, '1992-01-01', '1996-12-31'),
		('d02', 1009, '1997-01-01', '1998-12-31'),
		('d03', 4748, '1993-01-01', '1997-12-31')`)
	return en
}

func queryStrings(t *testing.T, en *Engine, sql string) []string {
	t.Helper()
	res, err := en.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	var out []string
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Text()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestSelectSingleTable(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select salary from employee_salary where id = 1001 order by tstart`)
	if len(got) != 2 || got[0] != "60000" || got[1] != "70000" {
		t.Errorf("salaries = %v", got)
	}
}

func TestSelectStar(t *testing.T) {
	en := newHRDB(t)
	res, err := en.Exec(`select * from employee_name where name = 'Bob'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Columns) != 4 {
		t.Fatalf("star: %v %v", res.Columns, res.Rows)
	}
	if res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestJoinOnID(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `
		select N.name, S.salary from employee_name as N, employee_salary as S
		where N.id = S.id and S.salary > 60000 order by S.salary`)
	want := []string{"Alice|65000", "Bob|70000"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("join = %v", got)
	}
}

func TestThreeWayJoin(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `
		select N.name, T.title, D.deptno
		from employee_name N, employee_title T, employee_deptno D
		where N.id = T.id and T.id = D.id and T.title = 'TechLeader'`)
	if len(got) != 2 {
		t.Fatalf("3-way join = %v", got)
	}
	for _, g := range got {
		if !strings.HasPrefix(g, "Bob|TechLeader|") {
			t.Errorf("row = %q", g)
		}
	}
}

func TestDateComparisonWithStrings(t *testing.T) {
	en := newHRDB(t)
	// Snapshot predicate in the paper's style: quoted ISO dates
	// compared against DATE columns.
	got := queryStrings(t, en, `
		select salary from employee_salary
		where id = 1001 and tstart <= "1995-07-01" and tend >= "1995-07-01"`)
	if len(got) != 1 || got[0] != "70000" {
		t.Errorf("snapshot salary = %v", got)
	}
}

func TestTemporalPredicatesInSQL(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `
		select name from employee_name as N
		where toverlaps(N.tstart, N.tend, DATE '1994-05-06', DATE '1995-05-06')
		order by name`)
	if len(got) != 2 {
		t.Errorf("toverlaps = %v", got)
	}
	got = queryStrings(t, en, `
		select title from employee_title
		where id = 1001 and tcontains(tstart, tend, DATE '1995-11-01', DATE '1995-12-01')`)
	if len(got) != 1 || got[0] != "Sr Engineer" {
		t.Errorf("tcontains = %v", got)
	}
	got = queryStrings(t, en, `
		select title from employee_title
		where id = 1001 and tmeets(tstart, tend, DATE '1995-10-01', DATE '1996-01-31')`)
	if len(got) != 1 || got[0] != "Engineer" {
		t.Errorf("tmeets = %v", got)
	}
}

func TestOverlapIntervalFunction(t *testing.T) {
	en := newHRDB(t)
	res, err := en.Exec(`
		select overlapinterval(tstart, tend, DATE '1995-05-01', DATE '1995-07-01')
		from employee_salary where id = 1001 and salary = 60000`)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Rows[0][0]
	if v.Kind != relstore.TypeXML {
		t.Fatalf("kind = %v", v.Kind)
	}
	if got, _ := v.X.Attr("tstart"); got != "1995-05-01" {
		t.Errorf("tstart = %s", got)
	}
	if got, _ := v.X.Attr("tend"); got != "1995-05-31" {
		t.Errorf("tend = %s", got)
	}
	// Disjoint → NULL.
	res, err = en.Exec(`
		select overlapinterval(tstart, tend, DATE '1999-01-01', DATE '1999-02-01')
		from employee_salary where id = 1001 and salary = 60000`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Error("disjoint overlapinterval should be NULL")
	}
}

func TestAggregates(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select count(*), min(salary), max(salary), sum(salary), avg(salary) from employee_salary`)
	if got[0] != "4|50000|70000|245000|61250" {
		t.Errorf("aggregates = %v", got)
	}
	got = queryStrings(t, en, `
		select id, count(*) from employee_salary group by id order by id`)
	if len(got) != 2 || got[0] != "1001|2" || got[1] != "1002|2" {
		t.Errorf("group count = %v", got)
	}
}

func TestGroupByHaving(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `
		select id, max(salary) from employee_salary
		group by id having max(salary) > 66000`)
	if len(got) != 1 || got[0] != "1001|70000" {
		t.Errorf("having = %v", got)
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select count(*) from employee_salary where id = 9999`)
	if len(got) != 1 || got[0] != "0" {
		t.Errorf("empty count = %v", got)
	}
	res, _ := en.Exec(`select max(salary) from employee_salary where id = 9999`)
	if !res.Rows[0][0].IsNull() {
		t.Error("max over empty should be NULL")
	}
}

func TestXMLElementConstruction(t *testing.T) {
	en := newHRDB(t)
	res, err := en.Exec(`
		select XMLElement(Name "employee",
			XMLAttributes(N.tstart as "tstart", N.tend as "tend"),
			N.name)
		from employee_name as N where N.name = 'Bob'`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0][0].Text()
	want := `<employee tstart="1995-01-01" tend="1996-12-31">Bob</employee>`
	if got != want {
		t.Errorf("xml = %s", got)
	}
}

func TestXMLAggPaperExample(t *testing.T) {
	en := newHRDB(t)
	// The paper's "new_employees" example from Section 5.3.
	res, err := en.Exec(`
		select XMLElement (Name "new_employees",
			XMLAttributes ("1995-02-01" as "start"),
			XMLAgg (XMLElement (Name "employee", e.name)))
		from employee_name as e
		where e.tstart >= "1995-02-01"`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0][0].Text()
	want := `<new_employees start="1995-02-01"><employee>Alice</employee></new_employees>`
	if got != want {
		t.Errorf("xml = %s", got)
	}
}

func TestQuery1FullTranslation(t *testing.T) {
	en := newHRDB(t)
	res, err := en.Exec(`
		select XMLElement (Name "title_history",
			XMLAgg (XMLElement (Name "title",
				XMLAttributes (T.tstart as "tstart", T.tend as "tend"), T.title)))
		from employee_title as T, employee_name as N
		where N.id = T.id and N.name = "Bob"
		group by N.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	x := res.Rows[0][0].X
	if x.Name != "title_history" {
		t.Fatalf("root = %s", x.Name)
	}
	titles := x.ChildElements("title")
	if len(titles) != 3 {
		t.Fatalf("titles = %d", len(titles))
	}
	if titles[0].TextContent() != "Engineer" || titles[2].TextContent() != "TechLeader" {
		t.Errorf("title values wrong: %s", res.Rows[0][0].Text())
	}
	if v, _ := titles[1].Attr("tstart"); v != "1995-10-01" {
		t.Errorf("tstart = %s", v)
	}
}

func TestTemporalAggregateTAVG(t *testing.T) {
	en := newHRDB(t)
	res, err := en.Exec(`select tavg(salary, tstart, tend) from employee_salary`)
	if err != nil {
		t.Fatal(err)
	}
	steps := res.Rows[0][0].X.ChildElements("step")
	if len(steps) < 3 {
		t.Fatalf("steps = %d: %s", len(steps), res.Rows[0][0].Text())
	}
	// From 1995-06-01 to 1995-12-31 both Bob (70000) and Alice (50000)
	// are live: average 60000.
	found := false
	for _, s := range steps {
		if s.AttrOr("tstart", "") == "1995-06-01" && s.AttrOr("value", "") == "60000" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected 60000 step: %s", res.Rows[0][0].Text())
	}
}

func TestInsertUpdateDeleteWithTriggers(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table emp (id INT, name VARCHAR, salary INT)`)
	var events []string
	en.AddTrigger("emp", func(ev TriggerEvent) error {
		events = append(events, ev.Type.String())
		return nil
	})
	en.MustExec(`insert into emp values (1, 'Bob', 100)`)
	en.MustExec(`update emp set salary = 200 where id = 1`)
	en.MustExec(`delete from emp where id = 1`)
	if strings.Join(events, ",") != "INSERT,UPDATE,DELETE" {
		t.Errorf("events = %v", events)
	}
}

func TestTriggerSeesOldAndNew(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table emp (id INT, salary INT)`)
	var old, nw int64
	en.AddTrigger("emp", func(ev TriggerEvent) error {
		if ev.Type == ChangeUpdate {
			old, _ = ev.Old[1].AsInt()
			nw, _ = ev.New[1].AsInt()
		}
		return nil
	})
	en.MustExec(`insert into emp values (1, 100)`)
	en.MustExec(`update emp set salary = salary + 10 where id = 1`)
	if old != 100 || nw != 110 {
		t.Errorf("old=%d new=%d", old, nw)
	}
}

func TestUpdateAffectsOnlyMatching(t *testing.T) {
	en := New(relstore.NewDatabase())
	en.MustExec(`create table emp (id INT, salary INT)`)
	en.MustExec(`insert into emp values (1, 100), (2, 200), (3, 300)`)
	res := en.MustExec(`update emp set salary = 0 where id > 1`)
	if res.RowsAffected != 2 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	got := queryStrings(t, en, `select salary from emp order by id`)
	if got[0] != "100" || got[1] != "0" || got[2] != "0" {
		t.Errorf("salaries = %v", got)
	}
}

func TestIndexLookupUsed(t *testing.T) {
	en := newHRDB(t)
	en.MustExec(`create index ix_sal_id on employee_salary (id)`)
	en.DB.DropCaches()
	en.DB.ResetStats()
	got := queryStrings(t, en, `select salary from employee_salary where id = 1002 order by salary`)
	if len(got) != 2 || got[0] != "50000" {
		t.Errorf("index query = %v", got)
	}
}

func TestCurrentDateAndRTEND(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select current_date() from employee_id where id = 1001`)
	if got[0] != "1997-01-01" {
		t.Errorf("current_date = %v", got)
	}
	got = queryStrings(t, en, `select rtend(tend) from employee_id order by id`)
	if got[0] != "1996-12-31" || got[1] != "1997-01-01" {
		t.Errorf("rtend = %v", got)
	}
}

func TestVirtualTable(t *testing.T) {
	en := New(relstore.NewDatabase())
	vt := &sliceTable{
		schema: relstore.NewSchema("virt", relstore.Col("k", relstore.TypeInt), relstore.Col("v", relstore.TypeString)),
		rows: []relstore.Row{
			{relstore.Int(1), relstore.String_("one")},
			{relstore.Int(2), relstore.String_("two")},
		},
	}
	en.RegisterVirtual("virt", vt)
	got := queryStrings(t, en, `select v from virt where k = 2`)
	if len(got) != 1 || got[0] != "two" {
		t.Errorf("virtual = %v", got)
	}
	en.UnregisterVirtual("virt")
	if _, err := en.Exec(`select v from virt`); err == nil {
		t.Error("unregistered virtual still visible")
	}
}

type sliceTable struct {
	schema relstore.Schema
	rows   []relstore.Row
}

func (s *sliceTable) Schema() relstore.Schema { return s.schema }
func (s *sliceTable) Scan(_ []relstore.ZoneBound, fn func(relstore.Row) bool) error {
	for _, r := range s.rows {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

func TestExecErrors(t *testing.T) {
	en := newHRDB(t)
	bad := []string{
		`select nope from employee_id`,
		`select id from nosuch`,
		`select e.id from employee_id x`,
		`insert into employee_id values (1)`,
		`insert into nosuch values (1)`,
		`update employee_id set nope = 1`,
		`select id from employee_id, employee_name`, // ambiguous id
		`select unknownfunc(id) from employee_id`,
		`select salary / 0 from employee_salary`,
	}
	for _, sql := range bad {
		if _, err := en.Exec(sql); err == nil {
			t.Errorf("Exec(%q): expected error", sql)
		}
	}
}

func TestCaseExpression(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `
		select name, case when tend = DATE '9999-12-31' then 'current' else 'former' end
		from employee_name order by name`)
	if got[0] != "Alice|current" || got[1] != "Bob|former" {
		t.Errorf("case = %v", got)
	}
}

func TestInAndBetweenEval(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select title from employee_title where title in ('Engineer', 'TechLeader') and id = 1001 order by tstart`)
	if len(got) != 2 {
		t.Errorf("in = %v", got)
	}
	got = queryStrings(t, en, `select salary from employee_salary where salary between 55000 and 66000 order by salary`)
	if len(got) != 2 || got[0] != "60000" || got[1] != "65000" {
		t.Errorf("between = %v", got)
	}
}

func TestLimitAndOrderDesc(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select salary from employee_salary order by salary desc limit 2`)
	if len(got) != 2 || got[0] != "70000" || got[1] != "65000" {
		t.Errorf("limit/desc = %v", got)
	}
}

func TestConcatAndArith(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select name || '-' || N.id, salary + 1 from employee_name N, employee_salary S where N.id = S.id and S.salary = 50000`)
	if len(got) != 1 || got[0] != "Alice-1002|50001" {
		t.Errorf("concat = %v", got)
	}
}

func TestDateArithmeticSQL(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select tstart + 30 from employee_id where id = 1001`)
	if got[0] != "1995-01-31" {
		t.Errorf("date+int = %v", got)
	}
	got = queryStrings(t, en, `select tend - tstart from employee_id where id = 1001`)
	if got[0] != "730" {
		t.Errorf("date-date = %v", got)
	}
}

func TestTRisingAggregate(t *testing.T) {
	en := newHRDB(t)
	res, err := en.Exec(`select trising(salary, tstart, tend) from employee_salary where id = 1001`)
	if err != nil {
		t.Fatal(err)
	}
	ivs := res.Rows[0][0].X.ChildElements("interval")
	if len(ivs) != 1 {
		t.Fatalf("rising intervals = %d: %s", len(ivs), res.Rows[0][0].Text())
	}
	if got, _ := ivs[0].Attr("tstart"); got != "1995-01-01" {
		t.Errorf("tstart = %s", got)
	}
}

func TestCountDistinctAggregate(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select count_distinct(id) from employee_salary`)
	if got[0] != "2" {
		t.Errorf("count_distinct = %v", got)
	}
	got = queryStrings(t, en, `select count_distinct(salary) from employee_salary`)
	if got[0] != "4" {
		t.Errorf("count_distinct salary = %v", got)
	}
}

func TestSelectDistinct(t *testing.T) {
	en := newHRDB(t)
	got := queryStrings(t, en, `select distinct id from employee_salary order by id`)
	if len(got) != 2 || got[0] != "1001" || got[1] != "1002" {
		t.Errorf("distinct = %v", got)
	}
	got = queryStrings(t, en, `select distinct deptno from employee_deptno order by deptno`)
	if len(got) != 2 || got[0] != "d01" || got[1] != "d02" {
		t.Errorf("distinct deptno = %v", got)
	}
	// Without DISTINCT the duplicates remain.
	got = queryStrings(t, en, `select id from employee_salary`)
	if len(got) != 4 {
		t.Errorf("non-distinct = %v", got)
	}
}

package sqlengine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"archis/internal/relstore"
)

// newParallelDB builds an engine over one multi-page, integer-heavy
// table so serial and parallel execution can be compared exactly
// (integer aggregates have no reassociation error).
func newParallelDB(t testing.TB, rows int) (*Engine, *relstore.Database) {
	t.Helper()
	db := relstore.NewDatabase()
	en := New(db)
	en.MustExec(`create table pt (id INT, v INT, grp VARCHAR, w INT)`)
	r := rand.New(rand.NewSource(7))
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if sb.Len() == 0 {
			sb.WriteString("insert into pt values ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'g%d', %d)", i, r.Intn(100000), r.Intn(7), r.Intn(50))
		if (i+1)%200 == 0 {
			en.MustExec(sb.String())
			sb.Reset()
		}
	}
	if sb.Len() > 0 {
		en.MustExec(sb.String())
	}
	tbl, _ := db.Table("pt")
	tbl.Flush() // seal pages so the scan has several morsels
	if tbl.PageCount() < 2 {
		t.Fatalf("test table has %d pages, want several", tbl.PageCount())
	}
	return en, db
}

// dump renders a result for exact comparison: column names plus every
// row, in order.
func dump(res *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		sb.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.Text())
		}
	}
	return sb.String()
}

// runBoth executes sql at Workers=1 and Workers=8 and fails unless
// the results are byte-identical (including row order: parallel
// execution merges morsel outputs in index order, which is defined to
// equal serial scan order).
func runBoth(t *testing.T, en *Engine, sql string) {
	t.Helper()
	en.Workers = 1
	serial, err := en.Exec(sql)
	if err != nil {
		t.Fatalf("serial %q: %v", sql, err)
	}
	en.Workers = 8
	parallel, err := en.Exec(sql)
	if err != nil {
		t.Fatalf("parallel %q: %v", sql, err)
	}
	if ds, dp := dump(serial), dump(parallel); ds != dp {
		t.Errorf("divergence on %q:\nserial:\n%s\nparallel:\n%s", sql, ds, dp)
	}
}

// genFilter produces a random WHERE clause over pt's columns using
// only deterministic integer/string comparisons.
func genFilter(r *rand.Rand) string {
	atom := func() string {
		switch r.Intn(5) {
		case 0:
			return fmt.Sprintf("v > %d", r.Intn(100000))
		case 1:
			return fmt.Sprintf("v <= %d", r.Intn(100000))
		case 2:
			return fmt.Sprintf("id >= %d", r.Intn(3000))
		case 3:
			return fmt.Sprintf("grp = 'g%d'", r.Intn(8))
		default:
			return fmt.Sprintf("w between %d and %d", r.Intn(25), 25+r.Intn(25))
		}
	}
	n := 1 + r.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		if r.Intn(4) == 0 {
			parts[i] = "(" + atom() + " or " + atom() + ")"
		} else {
			parts[i] = atom()
		}
	}
	return strings.Join(parts, " and ")
}

// TestParallelRandomizedDifferential generates filter and aggregate
// statements and asserts Workers=1 and Workers=8 return identical
// results. Run under -race this also stresses the worker pool.
func TestParallelRandomizedDifferential(t *testing.T) {
	en, _ := newParallelDB(t, 3000)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		where := genFilter(r)
		stmts := []string{
			fmt.Sprintf(`select id, v, grp from pt where %s`, where),
			fmt.Sprintf(`select count(*), sum(v), min(v), max(v), avg(w), count_distinct(grp) from pt where %s`, where),
			fmt.Sprintf(`select grp, count(*), sum(v), max(w) from pt where %s group by grp`, where),
			fmt.Sprintf(`select grp, sum(v) from pt where %s group by grp having count(*) > %d order by grp desc`, where, r.Intn(40)),
			fmt.Sprintf(`select distinct grp from pt where %s`, where),
			fmt.Sprintf(`select id from pt where %s order by v, id limit %d`, where, 1+r.Intn(20)),
		}
		runBoth(t, en, stmts[i%len(stmts)])
		runBoth(t, en, stmts[(i+1)%len(stmts)])
	}
}

// Unfiltered statements exercise the full-table morsel path.
func TestParallelFullScanStatements(t *testing.T) {
	en, _ := newParallelDB(t, 2500)
	for _, sql := range []string{
		`select * from pt`,
		`select count(*) from pt`,
		`select sum(v), min(id), max(id) from pt`,
		`select grp, count(*) from pt group by grp`,
		`select distinct w from pt`,
	} {
		runBoth(t, en, sql)
	}
}

// The parallel path must actually engage — dispatch morsels and
// borrow rows — rather than silently falling back to serial.
func TestParallelPathEngages(t *testing.T) {
	en, db := newParallelDB(t, 2000)
	en.Workers = 4
	db.ResetStats()
	if _, err := en.Exec(`select sum(v) from pt where v > 100`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Morsels == 0 {
		t.Error("no morsels dispatched: parallel path did not engage")
	}
	if st.RowsBorrowed == 0 {
		t.Error("no rows borrowed: scan fell back to the copying path")
	}
	if st.RowsCopied != 0 {
		t.Errorf("parallel scan copied %d rows", st.RowsCopied)
	}
}

// A DML statement issued between scans (tombstoning rows on sealed
// pages) must be observed identically by both paths; and a parallel
// scan created after the delete sees the post-delete snapshot.
func TestParallelAfterMidTableDeletes(t *testing.T) {
	en, _ := newParallelDB(t, 2000)
	runBoth(t, en, `select count(*), sum(v) from pt`)
	en.Workers = 1
	res, err := en.Exec(`delete from pt where w < 10`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected == 0 {
		t.Fatal("delete removed nothing")
	}
	runBoth(t, en, `select count(*), sum(v) from pt`)
	runBoth(t, en, `select id, v from pt where v > 50000`)
	runBoth(t, en, `select grp, count(*) from pt group by grp order by grp`)
}

// Workers=0 (GOMAXPROCS) and negative values must behave like valid
// settings, and multi-table statements must fall back to the serial
// path untouched.
func TestParallelWorkerSettingsAndFallbacks(t *testing.T) {
	en, _ := newParallelDB(t, 1200)
	en.MustExec(`create table small (id INT, tag VARCHAR)`)
	en.MustExec(`insert into small values (1, 'a'), (2, 'b'), (3, 'c')`)
	for _, w := range []int{0, -3, 2} {
		en.Workers = 1
		serial, err := en.Exec(`select sum(v) from pt`)
		if err != nil {
			t.Fatal(err)
		}
		en.Workers = w
		got, err := en.Exec(`select sum(v) from pt`)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if dump(serial) != dump(got) {
			t.Errorf("workers=%d diverged", w)
		}
	}
	// Join falls back to the serial executor and still works with
	// Workers set high.
	en.Workers = 8
	res, err := en.Exec(`select count(*) from pt, small where pt.w = small.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("join result: %+v", res)
	}
}

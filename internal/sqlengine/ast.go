// Package sqlengine implements the SQL subset that ArchIS' translated
// queries run on: SELECT with joins, WHERE, GROUP BY/HAVING, ORDER BY
// and LIMIT; INSERT/UPDATE/DELETE with row-level triggers; CREATE
// TABLE/INDEX; and the SQL/XML publishing functions (XMLELEMENT,
// XMLATTRIBUTES, XMLAGG, XMLFOREST) that Algorithm 1 of the paper
// targets, plus the temporal user-defined functions of Section 5.4.
//
// The dialect follows the paper's examples: both single- and
// double-quoted tokens are string literals ("Bob"), `XMLElement(Name
// "tag", …)` names elements with the NAME keyword, and dates may be
// written as quoted ISO strings compared directly against DATE columns.
package sqlengine

import "archis/internal/relstore"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT * or alias.*
	Qual  string
}

// TableRef is one FROM item: a base or virtual table with an alias.
type TableRef struct {
	Table string
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET col = expr.
type Assignment struct {
	Column string
	Expr   Expr
}

// DeleteStmt is DELETE FROM t [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE t (col TYPE, ...).
type CreateTableStmt struct {
	Name    string
	Columns []relstore.Column
}

// CreateIndexStmt is CREATE INDEX name ON t (cols).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct{ Name string }

// ExplainStmt is EXPLAIN [ANALYZE] <select>. Plain EXPLAIN renders the
// static access plan; ANALYZE executes the query under a tracer and
// renders the span tree with per-node timings and cardinalities.
type ExplainStmt struct {
	Analyze bool
	Inner   *SelectStmt
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*ExplainStmt) stmt()     {}

// Expr is any scalar expression.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Value relstore.Value }

// ColRef references a column, optionally qualified by a table alias.
// Resolution to a positional index happens at plan time.
type ColRef struct {
	Qual string
	Name string
}

// BinaryExpr applies Op ( =, !=, <, <=, >, >=, AND, OR, +, -, *, /, || ).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X      Expr
	Negate bool
}

// InExpr is `x [NOT] IN (e1, e2, ...)`.
type InExpr struct {
	X      Expr
	List   []Expr
	Negate bool
}

// BetweenExpr is `x BETWEEN lo AND hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
}

// FuncCall invokes a scalar or aggregate function.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool // COUNT(*)
}

// XMLElementExpr is XMLELEMENT(NAME tag, [XMLATTRIBUTES(...)], child...).
type XMLElementExpr struct {
	Tag      string
	Attrs    []XMLAttr
	Children []Expr
}

// XMLAttr is one `expr AS "name"` inside XMLATTRIBUTES.
type XMLAttr struct {
	Expr Expr
	Name string
}

// XMLForestExpr is XMLFOREST(expr AS name, ...): one element per arg.
type XMLForestExpr struct {
	Items []XMLAttr
}

// CaseExpr is a searched CASE WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond, Result Expr
}

func (*Literal) expr()        {}
func (*ColRef) expr()         {}
func (*BinaryExpr) expr()     {}
func (*UnaryExpr) expr()      {}
func (*IsNullExpr) expr()     {}
func (*InExpr) expr()         {}
func (*BetweenExpr) expr()    {}
func (*FuncCall) expr()       {}
func (*XMLElementExpr) expr() {}
func (*XMLForestExpr) expr()  {}
func (*CaseExpr) expr()       {}

package sqlengine

import (
	"context"

	"archis/internal/relstore"
	"archis/internal/temporal"
)

// Valid-time reads (DESIGN.md §16). A query scoped with
// core.AsOfValidTime carries the valid date in its context; the select
// paths below rewrite it into ordinary conjuncts — vstart<=d AND
// vend>=d per source that stores the pair — before predicate
// partitioning, so the existing pushdown, zone-bound and planner
// machinery apply to valid time with no new executor code.

type validAsOfKey struct{}

// WithValidAsOf scopes every SELECT run under ctx to versions whose
// valid interval covers d.
func WithValidAsOf(ctx context.Context, d temporal.Date) context.Context {
	return context.WithValue(ctx, validAsOfKey{}, d)
}

// ValidAsOf extracts the valid-time point installed by WithValidAsOf.
func ValidAsOf(ctx context.Context) (temporal.Date, bool) {
	d, ok := ctx.Value(validAsOfKey{}).(temporal.Date)
	return d, ok
}

// validConjuncts builds the per-source valid-time predicate for
// valid date d. Sources storing the pair get vstart<=d AND vend>=d.
// Legacy history sources (tstart/tend but no valid columns) carry the
// implicit default [tstart, Forever], for which the covering test
// reduces to tstart<=d — Forever>=d is always true. Sources with
// neither (current tables, catalogs) are untouched: every current row
// is the presently-believed version.
func validConjuncts(sources []*source, d temporal.Date) []Expr {
	var out []Expr
	lit := func() Expr { return &Literal{Value: relstore.DateV(d)} }
	for _, s := range sources {
		hasV := s.schema.ColumnIndex("vstart") >= 0 && s.schema.ColumnIndex("vend") >= 0
		switch {
		case hasV:
			out = append(out,
				&BinaryExpr{Op: "<=", L: &ColRef{Qual: s.alias, Name: "vstart"}, R: lit()},
				&BinaryExpr{Op: ">=", L: &ColRef{Qual: s.alias, Name: "vend"}, R: lit()})
		case s.schema.ColumnIndex("tstart") >= 0 && s.schema.ColumnIndex("tend") >= 0:
			out = append(out,
				&BinaryExpr{Op: "<=", L: &ColRef{Qual: s.alias, Name: "tstart"}, R: lit()})
		}
	}
	return out
}

package sqlengine

import (
	"context"
	"fmt"
	"strings"

	"archis/internal/obs"
	"archis/internal/relstore"
)

// EXPLAIN [ANALYZE] rendering. Plain EXPLAIN walks the same planner
// decisions execSelect makes — index selection, zone-bound pushdown,
// morsel eligibility, join strategy — without executing, so it is
// deterministic and cheap. EXPLAIN ANALYZE executes the statement
// under a fresh tracer and renders the finished span tree, so every
// node carries measured timings and cardinalities.

func (en *Engine) execExplain(ctx context.Context, st *ExplainStmt, sn *relstore.Snapshot) (*Result, error) {
	if st.Analyze {
		tr := obs.NewTracer("query")
		res, err := en.execSelect(ctx, st.Inner, tr.Root(), sn)
		if err != nil {
			return nil, err
		}
		tr.Root().AddRows(0, int64(len(res.Rows)))
		return planResult(tr.Finish("").Tree()), nil
	}
	lines, err := en.explainSelect(ctx, st.Inner, sn)
	if err != nil {
		return nil, err
	}
	return planResult(strings.Join(lines, "\n")), nil
}

// planResult wraps rendered plan text as a one-column result set.
func planResult(text string) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, relstore.Row{relstore.String_(line)})
	}
	return res
}

// explainSelect renders the static access plan, mirroring the
// decision order of execSelect. Cardinality-dependent runtime choices
// (index vs hash join under indexJoinThreshold outer rows) are shown
// as the rule the executor applies.
func (en *Engine) explainSelect(ctx context.Context, stmt *SelectStmt, sn *relstore.Snapshot) ([]string, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	sources := make([]*source, len(stmt.From))
	seen := map[string]bool{}
	for i, ref := range stmt.From {
		s, err := en.resolveSource(ref, sn)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(ref.Alias)
		if seen[key] {
			return nil, fmt.Errorf("sql: duplicate alias %s", ref.Alias)
		}
		seen[key] = true
		sources[i] = s
	}

	var conjuncts []Expr
	if stmt.Where != nil {
		conjuncts = splitAnd(stmt.Where, nil)
	}
	validAt, hasValidAt := ValidAsOf(ctx)
	if hasValidAt {
		conjuncts = append(conjuncts, validConjuncts(sources, validAt)...)
	}
	perAlias := map[string][]Expr{}
	var multi []Expr
	for _, c := range conjuncts {
		aliases := map[string]bool{}
		if err := exprAliases(c, sources, aliases); err != nil {
			return nil, err
		}
		switch len(aliases) {
		case 0, 1:
			target := ""
			for a := range aliases {
				target = a
			}
			if target == "" {
				multi = append(multi, c)
			} else {
				perAlias[target] = append(perAlias[target], c)
			}
		default:
			multi = append(multi, c)
		}
	}

	var lines []string
	add := func(depth int, format string, args ...any) {
		lines = append(lines, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
	}

	describeScan := func(s *source, cs []Expr) (string, error) {
		p, err := en.planScan(s, cs, sources)
		if err != nil {
			return "", err
		}
		kind := "table"
		if s.base == nil {
			kind = "virtual"
		}
		d := fmt.Sprintf("scan %s (%s)", s.alias, kind)
		if p.eqIndex != nil {
			d = fmt.Sprintf("index scan %s (index %s)", s.alias, p.eqIndex.Name)
		}
		if len(p.bounds) > 0 {
			d += fmt.Sprintf(" bounds=%d", len(p.bounds))
		}
		if p.filter != nil {
			d += fmt.Sprintf(" filter=%d conjuncts", len(cs))
		}
		if p.est.Planned {
			d += fmt.Sprintf(" est=%d", p.est.OutRows)
		}
		return d, nil
	}

	add(0, "select")
	if hasValidAt {
		// Surfaced so bitemporal plans are distinguishable from
		// transaction-time ones; the rewritten conjuncts themselves are
		// already counted in the filter/bounds figures below.
		add(1, "valid_pred=vstart<=%s<=vend", validAt)
	}

	if len(sources) == 1 {
		s := sources[0]
		d, err := describeScan(s, conjuncts)
		if err != nil {
			return nil, err
		}
		// Vectorized path first, mirroring execSelect's decision order:
		// columnar mode on, batch-streaming storage, no index probe.
		if en.Columnar && s.base == nil && !strings.HasPrefix(d, "index scan") {
			if _, ok := s.virtual.(BatchSource); ok {
				d += " access=colscan"
				workers := en.scanWorkers()
				grouped := en.isGrouped(stmt)
				if grouped {
					p, err := en.compileGrouping(stmt, layoutFor(s.alias, s.schema))
					if err != nil {
						return nil, err
					}
					if !p.mergeable() {
						workers = 1
					}
				}
				if workers > 1 {
					add(1, "morsel-fanout workers=%d", workers)
					add(2, "%s", d)
					if grouped {
						add(1, "agg-merge")
					}
				} else {
					add(1, "%s", d)
				}
				explainProject(stmt, add)
				return lines, nil
			}
		}
		parallel := false
		if workers := en.scanWorkers(); workers > 1 && !strings.HasPrefix(d, "index scan") {
			if _, ok := s.morselSource(); ok {
				if en.isGrouped(stmt) {
					p, err := en.compileGrouping(stmt, layoutFor(s.alias, s.schema))
					if err != nil {
						return nil, err
					}
					parallel = p.mergeable()
				} else {
					parallel = true
				}
			}
		}
		if parallel {
			add(1, "morsel-fanout workers=%d", en.scanWorkers())
			add(2, "%s", d)
			if en.isGrouped(stmt) {
				add(1, "agg-merge")
			}
		} else {
			add(1, "%s", d)
		}
		explainProject(stmt, add)
		return lines, nil
	}

	// Multi-source: describe the fold order of execSelect. With the
	// planner on, the folds follow planJoins (greedy reordering plus
	// static build-side/strategy choices); with it off, FROM order and
	// the legacy runtime rules are rendered.
	ordered := sources
	var jplan *joinPlan
	if en.Planner {
		var err error
		if jplan, err = en.planJoins(sources, perAlias, multi); err != nil {
			return nil, err
		}
		ordered = make([]*source, len(sources))
		for i, idx := range jplan.order {
			ordered[i] = sources[idx]
		}
	}
	first := ordered[0]
	layout := layoutFor(first.alias, first.schema)
	joinedAliases := map[string]bool{strings.ToLower(first.alias): true}
	pendingMulti := multi
	scanned := false
	for fi, s := range ordered[1:] {
		joins, rest := en.equiJoinConds(pendingMulti, layout, joinedAliases, s, sources)
		pendingMulti = rest
		singles := perAlias[strings.ToLower(s.alias)]
		innerIndexed := s.base != nil && len(joins) > 0 && s.base.IndexOn(joins[0].newPos) != nil
		var fp *foldPlan
		if jplan != nil {
			fp = &jplan.folds[fi]
		}
		if !scanned {
			scanned = true
			fd, err := describeScan(first, perAlias[strings.ToLower(first.alias)])
			if err != nil {
				return nil, err
			}
			fuse := len(joins) > 0
			if fp != nil {
				fuse = fuse && fp.strategy == stratHashBuildInner
			} else {
				fuse = fuse && !innerIndexed
			}
			if fuse {
				// Fused first fold: scan streams into the probe
				// (hashJoinFirst), exactly like execSelect's continue.
				id, err := describeScan(s, singles)
				if err != nil {
					return nil, err
				}
				if fp != nil {
					add(1, "hash join keys=%d build=%s est outer=%d inner=%d out=%d",
						len(joins), s.alias, fp.estOuter, fp.estInner, fp.estOut)
				} else {
					add(1, "hash join keys=%d", len(joins))
				}
				add(2, "build: %s", id)
				add(2, "probe: %s (streamed)", fd)
				layout = layout.concat(layoutFor(s.alias, s.schema))
				joinedAliases[strings.ToLower(s.alias)] = true
				continue
			}
			add(1, "%s", fd)
		}
		switch {
		case fp != nil:
			switch fp.strategy {
			case stratIndex:
				add(1, "index join %s keys=%d (index %s) est outer=%d out=%d",
					s.alias, len(joins), fp.index.Name, fp.estOuter, fp.estOut)
			case stratHashBuildInner:
				add(1, "hash join %s keys=%d build=%s est outer=%d inner=%d out=%d",
					s.alias, len(joins), s.alias, fp.estOuter, fp.estInner, fp.estOut)
			case stratHashBuildOuter:
				add(1, "hash join %s keys=%d build=outer est outer=%d inner=%d out=%d",
					s.alias, len(joins), fp.estOuter, fp.estInner, fp.estOut)
			default:
				add(1, "nested-loop join %s est out=%d", s.alias, fp.estOut)
			}
		case len(joins) > 0 && innerIndexed:
			add(1, "join %s keys=%d: index join (index %s) if outer rows <= %d, else hash join",
				s.alias, len(joins), s.base.IndexOn(joins[0].newPos).Name, indexJoinThreshold)
		case len(joins) > 0:
			add(1, "hash join %s keys=%d", s.alias, len(joins))
		default:
			add(1, "nested-loop join %s", s.alias)
		}
		layout = layout.concat(layoutFor(s.alias, s.schema))
		joinedAliases[strings.ToLower(s.alias)] = true
	}
	if len(pendingMulti) > 0 {
		add(1, "filter residual=%d conjuncts", len(pendingMulti))
	}
	explainProject(stmt, add)
	return lines, nil
}

func explainProject(stmt *SelectStmt, add func(int, string, ...any)) {
	d := fmt.Sprintf("project cols=%d", len(stmt.Select))
	if len(stmt.GroupBy) > 0 {
		d += fmt.Sprintf(" group-by=%d", len(stmt.GroupBy))
	}
	if stmt.Having != nil {
		d += " having"
	}
	if stmt.Distinct {
		d += " distinct"
	}
	if len(stmt.OrderBy) > 0 {
		d += fmt.Sprintf(" order-by=%d", len(stmt.OrderBy))
	}
	if stmt.Limit >= 0 {
		d += fmt.Sprintf(" limit=%d", stmt.Limit)
	}
	add(1, "%s", d)
}

package archis_test

import (
	"strings"
	"testing"

	"archis"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := archis.New(archis.Options{Layout: archis.LayoutClustered})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Register(archis.TableSpec{
		Name: "employee",
		Columns: []archis.Column{
			archis.IntCol("id"), archis.StringCol("name"), archis.IntCol("salary"),
		},
		Key: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetClock(archis.MustDate("1995-01-01"))
	if _, err := sys.Exec(`insert into employee values (1, 'Bob', 60000)`); err != nil {
		t.Fatal(err)
	}
	sys.SetClock(archis.MustDate("1995-06-01"))
	if _, err := sys.Exec(`update employee set salary = 70000 where id = 1`); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary return $s`)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Items.Serialize()
	if !strings.Contains(out, `<salary tstart="1995-01-01" tend="1995-05-31">60000</salary>`) {
		t.Errorf("missing closed version: %s", out)
	}
	if !strings.Contains(out, `tend="9999-12-31">70000</salary>`) {
		t.Errorf("missing current version: %s", out)
	}
	if res.Path != archis.PathSQL {
		t.Errorf("path = %s", res.Path)
	}

	// Time-travel snapshot via the XML view.
	seq, err := sys.QueryXML(`for $s in doc("employees.xml")/employees/employee/salary
		[tstart(.) <= xs:date("1995-03-01") and tend(.) >= xs:date("1995-03-01")] return string($s)`)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Serialize() != "60000" {
		t.Errorf("snapshot = %s", seq.Serialize())
	}

	// Dates and intervals round-trip through the public aliases.
	d, err := archis.ParseDate("1995-01-01")
	if err != nil || d.String() != "1995-01-01" {
		t.Errorf("ParseDate = %v, %v", d, err)
	}
	if !archis.Forever.IsForever() {
		t.Error("Forever broken")
	}
}
